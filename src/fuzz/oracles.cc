#include "fuzz/oracles.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <unordered_set>

#include <unistd.h>

#include "analysis/dependence.h"
#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "core/cone.h"
#include "core/done_dead.h"
#include "core/search.h"
#include "core/storage_count.h"
#include "core/uov.h"
#include "geometry/polyhedron.h"
#include "kernels/psm.h"
#include "kernels/stencil5.h"
#include "mapping/storage_mapping.h"
#include "schedule/executor.h"
#include "service/executor.h"
#include "service/store.h"
#include "sim/streaming.h"
#include "sim/trace.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/thread_pool.h"
#include "tune/tune.h"

namespace uov {
namespace fuzz {

namespace {

/** Enumerate every integer point of [lo, hi]; stop when f is false. */
template <typename Fn>
void
forEachBoxPoint(const IVec &lo, const IVec &hi, Fn f)
{
    IVec p = lo;
    size_t d = lo.dim();
    for (;;) {
        if (!f(p))
            return;
        size_t c = d;
        while (c-- > 0) {
            if (p[c] < hi[c]) {
                ++p[c];
                break;
            }
            p[c] = lo[c];
            if (c == 0)
                return;
        }
    }
}

std::string
vecsStr(const std::vector<IVec> &vs)
{
    std::string s = "{";
    for (size_t i = 0; i < vs.size(); ++i)
        s += (i ? ", " : "") + vs[i].str();
    return s + "}";
}

} // namespace

bool
FuzzCase::valid() const
{
    if (deps.empty())
        return false;
    try {
        Stencil s(deps);
        if (lo.dim() != s.dim() || hi.dim() != s.dim())
            return false;
    } catch (const UovError &) {
        return false;
    }
    for (size_t c = 0; c < lo.dim(); ++c)
        if (lo[c] > hi[c])
            return false;
    return true;
}

std::string
FuzzCase::str() const
{
    std::ostringstream oss;
    oss << "seed=" << seed << " deps=" << vecsStr(deps)
        << " candidates=" << vecsStr(candidates) << " box=["
        << lo.str() << ", " << hi.str() << "]";
    return oss.str();
}

FuzzCase
makeCase(uint64_t case_seed, const GenOptions &opt)
{
    SplitMix64 rng(case_seed);
    Stencil s = randomStencil(rng, opt);

    FuzzCase c;
    c.seed = case_seed;
    c.deps = s.deps();
    randomIsgBox(rng, s.dim(), opt, c.lo, c.hi);

    int64_t radius =
        std::min<int64_t>(s.initialUov().normInf() + 1, 6);
    for (int k = 0; k < 4; ++k)
        c.candidates.push_back(randomCandidate(rng, s.dim(), radius));
    // Always probe the two structurally interesting points: the
    // guaranteed UOV and a raw dependence (usually not one).
    c.candidates.push_back(s.initialUov());
    c.candidates.push_back(s.dep(rng.nextBelow(s.size())));
    return c;
}

FuzzCase
caseFromNest(const LoopNest &nest)
{
    Stencil s = extractStencil(nest, 0);

    FuzzCase c;
    c.deps = s.deps();
    // Clamp the box so exhaustive cross-checks stay cheap even for
    // production-sized corpus nests.
    std::vector<int64_t> lo(s.dim()), hi(s.dim());
    for (size_t k = 0; k < s.dim(); ++k) {
        lo[k] = nest.lo()[k];
        hi[k] = std::min(nest.hi()[k], nest.lo()[k] + 7);
    }
    c.lo = IVec(std::move(lo));
    c.hi = IVec(std::move(hi));

    SplitMix64 rng(0x5EEDC0FFEEULL + s.size());
    int64_t radius =
        std::min<int64_t>(s.initialUov().normInf() + 1, 6);
    for (int k = 0; k < 3; ++k)
        c.candidates.push_back(randomCandidate(rng, s.dim(), radius));
    c.candidates.push_back(s.initialUov());
    for (const auto &v : s.deps())
        c.candidates.push_back(v);
    return c;
}

std::optional<bool>
bruteForceConeContains(const Stencil &stencil, const IVec &target)
{
    auto h = stencil.positiveFunctional();
    if (!h)
        return std::nullopt;
    if (target.isZero())
        return true;
    int64_t ht = h->dot(target);
    if (ht <= 0)
        return false;

    // Forward closure: grow the cone from the origin one generator at
    // a time, never past the target's h-level.  Every step raises h
    // by at least 1, so the closure is finite and its size is bounded
    // by the lattice points of the cone slice h . p <= ht.
    constexpr size_t kMaxClosure = 500'000;
    std::unordered_set<IVec, IVecHash> seen;
    std::vector<IVec> frontier{IVec(stencil.dim())};
    seen.insert(frontier.front());
    while (!frontier.empty()) {
        std::vector<IVec> next;
        for (const auto &p : frontier) {
            for (const auto &v : stencil.deps()) {
                IVec q = p + v;
                if (h->dot(q) > ht)
                    continue;
                if (q == target)
                    return true;
                if (seen.insert(q).second)
                    next.push_back(q);
            }
        }
        if (seen.size() > kMaxClosure)
            return std::nullopt; // too big to decide independently
        frontier = std::move(next);
    }
    return false;
}

OracleVerdict
checkMembership(const FuzzCase &c)
{
    Stencil s = c.stencil();
    // All three views share one cone memo: each membership subproblem
    // over s is solved once for the whole oracle family.
    auto memo = std::make_shared<ConeMemo>(s);
    UovOracle oracle(memo);
    ConeSolver solver(memo);
    DoneDeadAnalysis dd(memo);
    IVec origin(s.dim());

    for (const auto &w : c.candidates) {
        if (w.dim() != s.dim())
            continue;

        // Cone membership: memoized backward search vs forward
        // closure vs coefficient certificate.
        bool in_cone = solver.contains(w);
        auto bf = bruteForceConeContains(s, w);
        if (bf && *bf != in_cone) {
            return "cone membership of " + w.str() + " over " +
                   s.str() + ": ConeSolver says " +
                   (in_cone ? "yes" : "no") +
                   ", forward closure says the opposite";
        }
        auto coeffs = solver.certificate(w);
        if (coeffs.has_value() != in_cone)
            return "certificate existence for " + w.str() + " over " +
                   s.str() + " disagrees with membership";
        if (coeffs) {
            IVec sum(s.dim());
            for (size_t i = 0; i < coeffs->size(); ++i) {
                if ((*coeffs)[i] < 0)
                    return "negative certificate coefficient for " +
                           w.str() + " over " + s.str();
                sum += s.dep(i) * (*coeffs)[i];
            }
            if (sum != w)
                return "certificate for " + w.str() + " over " +
                       s.str() + " sums to " + sum.str();
        }

        // UOV membership: oracle vs DEAD-set definition at two
        // different q (the paper's q-independence) vs brute force.
        bool is_uov = oracle.isUov(w);
        bool dead_at_origin = dd.isDead(origin, origin - w);
        bool dead_at_hi = dd.isDead(c.hi, c.hi - w);
        if (dead_at_origin != dead_at_hi)
            return "DEAD-set q-independence violated for " + w.str() +
                   " over " + s.str() + ": q=0 says " +
                   (dead_at_origin ? "dead" : "live") + ", q=" +
                   c.hi.str() + " disagrees";
        if (dead_at_origin != is_uov)
            return "isUov(" + w.str() + ") = " +
                   (is_uov ? "true" : "false") + " over " + s.str() +
                   " but q - w in DEAD(V, q) says the opposite";

        bool brute_ok = true, brute_known = true;
        if (w.isZero()) {
            brute_ok = false;
        } else {
            for (const auto &v : s.deps()) {
                auto m = bruteForceConeContains(s, w - v);
                if (!m) {
                    brute_known = false;
                    break;
                }
                if (!*m) {
                    brute_ok = false;
                    break;
                }
            }
        }
        if (brute_known && brute_ok != is_uov)
            return "isUov(" + w.str() + ") over " + s.str() +
                   " contradicts the forward-closure brute force";

        // Full certificate: existence iff membership, every row an
        // independent witness.
        auto cert = oracle.certify(w);
        if (cert.has_value() != is_uov)
            return "certify(" + w.str() + ") existence over " +
                   s.str() + " disagrees with isUov";
        if (cert) {
            for (size_t i = 0; i < cert->rows.size(); ++i) {
                const auto &row = cert->rows[i];
                if (row.size() != s.size() || row[i] < 1)
                    return "certificate row " + std::to_string(i) +
                           " for " + w.str() + " over " + s.str() +
                           " lacks the required diagonal a_ii >= 1";
                IVec sum(s.dim());
                for (size_t j = 0; j < row.size(); ++j) {
                    if (row[j] < 0)
                        return "negative coefficient in certificate "
                               "row " +
                               std::to_string(i) + " for " + w.str() +
                               " over " + s.str();
                    sum += s.dep(j) * row[j];
                }
                if (sum != w)
                    return "certificate row " + std::to_string(i) +
                           " for " + w.str() + " over " + s.str() +
                           " sums to " + sum.str();
            }
        }
    }
    return std::nullopt;
}

OracleVerdict
checkSearch(const FuzzCase &c)
{
    Stencil s = c.stencil();
    Polyhedron isg = Polyhedron::box(c.lo, c.hi);
    UovOracle oracle(s);

    for (SearchObjective obj : {SearchObjective::ShortestVector,
                                SearchObjective::BoundedStorage}) {
        const char *obj_name = obj == SearchObjective::ShortestVector
                                   ? "shortest"
                                   : "storage";
        SearchOptions base;
        if (obj == SearchObjective::BoundedStorage)
            base.isg = isg;

        // Size the search region before running anything: the
        // known-bounds radius can explode on unlucky boxes (P_ovo/P_M
        // in the hundreds), and the ablations explore the whole ball.
        // Small ball: let every run finish and compare all four
        // implementations exactly.  Large ball: run with a small visit
        // cap and check only the anytime properties (each result is a
        // genuine UOV no worse than the initial one) -- capped runs
        // are allowed to disagree on the optimum.
        IVec initial = s.initialUov();
        int64_t radius_sq =
            obj == SearchObjective::ShortestVector
                ? initial.normSquared()
                : knownBoundsRadiusSquared(initial, isg);
        auto radius = static_cast<int64_t>(std::sqrt(
                          static_cast<double>(radius_sq))) +
                      1;
        double ball = 1;
        for (size_t k = 0; k < s.dim(); ++k)
            ball *= static_cast<double>(2 * radius + 1);
        bool small_ball = ball <= 40'000;
        if (!small_ball)
            base.budget.max_nodes = 2'000;

        SearchOptions fifo = base;
        fifo.use_priority_queue = false;
        SearchOptions noshrink = base;
        noshrink.disable_bound_shrinking = true;

        SearchResult bb = BranchBoundSearch(s, obj, base).run();
        SearchResult ff = BranchBoundSearch(s, obj, fifo).run();
        SearchResult ns = BranchBoundSearch(s, obj, noshrink).run();

        for (const auto *r : {&bb, &ff, &ns}) {
            if (!oracle.isUov(r->best_uov))
                return std::string(obj_name) + " search over " +
                       s.str() + " returned non-universal " +
                       r->best_uov.str();
            if (r->best_objective > r->initial_objective)
                return std::string(obj_name) + " search over " +
                       s.str() + " ended worse than the initial UOV";
        }
        if (!small_ball || bb.degraded() || ff.degraded() ||
            ns.degraded())
            continue;
        if (ff.best_objective != bb.best_objective)
            return std::string(obj_name) + " FIFO ablation over " +
                   s.str() + " found objective " +
                   std::to_string(ff.best_objective) +
                   " != priority-queue " +
                   std::to_string(bb.best_objective);
        if (ns.best_objective != bb.best_objective)
            return std::string(obj_name) +
                   " no-shrink ablation over " + s.str() +
                   " found objective " +
                   std::to_string(ns.best_objective) + " != default " +
                   std::to_string(bb.best_objective);

        // Exhaustive reference over the same (small) ball.
        SearchResult ex = exhaustiveUovSearch(s, obj, base);
        if (ex.best_objective != bb.best_objective)
            return std::string(obj_name) +
                   " branch-and-bound over " + s.str() +
                   " found objective " +
                   std::to_string(bb.best_objective) +
                   " but exhaustive ball search found " +
                   std::to_string(ex.best_objective) + " (" +
                   ex.best_uov.str() + ")";
    }
    return std::nullopt;
}

OracleVerdict
checkMapping(const FuzzCase &c)
{
    Stencil s = c.stencil();
    Polyhedron isg = Polyhedron::box(c.lo, c.hi);

    SearchResult bb =
        BranchBoundSearch(s, SearchObjective::ShortestVector).run();
    std::vector<IVec> ovs{bb.best_uov};
    if (s.initialUov() != bb.best_uov)
        ovs.push_back(s.initialUov());

    for (const auto &ov : ovs) {
        for (ModLayout layout :
             {ModLayout::Interleaved, ModLayout::Blocked}) {
            StorageMapping sm = StorageMapping::create(ov, isg, layout);
            std::string bad;
            forEachBoxPoint(c.lo, c.hi, [&](const IVec &q) {
                int64_t i = sm(q);
                if (i < 0 || i >= sm.cellCount()) {
                    bad = "SM(" + q.str() + ") = " +
                          std::to_string(i) + " outside [0, " +
                          std::to_string(sm.cellCount()) + ")";
                    return false;
                }
                if (sm(q + ov) != i) {
                    bad = "SM not ov-periodic at " + q.str();
                    return false;
                }
                return true;
            });
            if (!bad.empty())
                return "mapping for ov " + ov.str() + " over " +
                       s.str() + " box [" + c.lo.str() + ", " +
                       c.hi.str() + "]: " + bad;
        }

        // Execute under random legal schedules with writer-tracked
        // storage: a UOV may never let a live value be overwritten.
        // cone_safe: the UOV guarantee covers schedules respecting the
        // full dependence-cone precedence; an in-box topological order
        // is weaker near the ISG boundary (forcing chains can exit the
        // box) and genuinely clobbers live values -- this fuzzer found
        // 2-dependence repros (see examples/corpus/boundary_topo.nest).
        StencilComputation comp(s);
        SplitMix64 rng(c.seed ^ 0x9e3779b97f4a7c15ULL);
        for (int j = 0; j < 3; ++j) {
            auto sched = randomLegalSchedule(rng, s, /*cone_safe=*/true);
            for (ModLayout layout :
                 {ModLayout::Interleaved, ModLayout::Blocked}) {
                ExecutionResult r = runWithOvStorage(
                    comp, *sched, c.lo, c.hi, ov, layout);
                if (!r.correct() || r.clobbers != 0)
                    return "ov " + ov.str() + " over " + s.str() +
                           " under schedule " + sched->name() +
                           " box [" + c.lo.str() + ", " + c.hi.str() +
                           "]: " + std::to_string(r.mismatches) +
                           " mismatches, " +
                           std::to_string(r.clobbers) + " clobbers";
            }
        }
    }
    return std::nullopt;
}

namespace {

/** Compare every observable statistic of two memory systems. */
OracleVerdict
diffStats(const MemorySystem &a, const MemorySystem &b,
          const std::string &label)
{
    std::ostringstream oss;
    auto miss = [&](const char *what, auto x, auto y) {
        oss << label << ": " << what << " " << x << " != " << y;
        return oss.str();
    };
    if (a.accesses() != b.accesses())
        return miss("accesses", a.accesses(), b.accesses());
    if (a.branches() != b.branches())
        return miss("branches", a.branches(), b.branches());
    if (a.pageFaults() != b.pageFaults())
        return miss("page faults", a.pageFaults(), b.pageFaults());
    if (a.tlb().misses() != b.tlb().misses())
        return miss("TLB misses", a.tlb().misses(), b.tlb().misses());
    auto level = [&](const Cache *x, const Cache *y,
                     const char *name) -> OracleVerdict {
        if ((x == nullptr) != (y == nullptr))
            return miss(name, x ? "present" : "absent",
                        y ? "present" : "absent");
        if (!x)
            return std::nullopt;
        if (x->hits() != y->hits())
            return miss(name, x->hits(), y->hits());
        if (x->misses() != y->misses())
            return miss(name, x->misses(), y->misses());
        if (x->writebacks() != y->writebacks())
            return miss(name, x->writebacks(), y->writebacks());
        return std::nullopt;
    };
    if (auto v = level(&a.l1(), &b.l1(), "L1"))
        return v;
    if (auto v = level(&a.l2(), &b.l2(), "L2"))
        return v;
    if (auto v = level(a.l3(), b.l3(), "L3"))
        return v;
    // Bit-identical cycle accounting, not approximate.
    if (a.cycles() != b.cycles())
        return miss("cycles", a.cycles(), b.cycles());
    return std::nullopt;
}

/** Fused vs record-then-replay vs direct, for one kernel closure. */
template <typename RunKernel>
OracleVerdict
diffStreaming(const std::string &label, RunKernel run)
{
    std::vector<MachineConfig> machines{MachineConfig::pentiumPro(),
                                        MachineConfig::ultra2(),
                                        MachineConfig::alpha21164()};

    MultiMachineSim fused(machines);
    double fused_result;
    {
        StreamingSim mem = fused.policy();
        VirtualArena arena;
        fused_result = run(mem, arena);
    }

    Trace trace;
    double traced_result;
    {
        VirtualArena arena;
        TracingMem mem{&trace, 0};
        traced_result = run(mem, arena);
    }
    if (fused_result != traced_result)
        return label + ": fused kernel result " +
               std::to_string(fused_result) +
               " != traced kernel result " +
               std::to_string(traced_result);

    for (size_t m = 0; m < machines.size(); ++m) {
        MemorySystem replayed(machines[m]);
        trace.replay(replayed);
        if (auto v = diffStats(fused.system(m), replayed,
                               label + " fused-vs-replay on " +
                                   machines[m].name))
            return v;

        MemorySystem direct(machines[m]);
        double direct_result;
        {
            SimMem mem{&direct};
            VirtualArena arena;
            direct_result = run(mem, arena);
        }
        if (direct_result != fused_result)
            return label + ": direct SimMem result differs on " +
                   machines[m].name;
        if (auto v = diffStats(fused.system(m), direct,
                               label + " fused-vs-direct on " +
                                   machines[m].name))
            return v;
    }
    return std::nullopt;
}

} // namespace

OracleVerdict
checkStreaming(uint64_t case_seed)
{
    SplitMix64 rng(case_seed);
    if (rng.nextBelow(2) == 0) {
        Stencil5Config cfg;
        cfg.length = 8 + static_cast<int64_t>(rng.nextBelow(57));
        cfg.steps = 1 + static_cast<int64_t>(rng.nextBelow(8));
        cfg.tile_t = 1 + static_cast<int64_t>(rng.nextBelow(8));
        cfg.tile_s = 4 + static_cast<int64_t>(rng.nextBelow(61));
        const auto &variants = allStencil5Variants();
        Stencil5Variant v = variants[rng.nextBelow(variants.size())];
        std::string label = "stencil5/" +
                            std::string(stencil5VariantName(v)) +
                            " L=" + std::to_string(cfg.length) +
                            " T=" + std::to_string(cfg.steps);
        return diffStreaming(label, [&](auto &mem, auto &arena) {
            return runStencil5(v, cfg, mem, arena);
        });
    }

    PsmConfig cfg;
    cfg.n0 = 8 + static_cast<int64_t>(rng.nextBelow(33));
    cfg.n1 = 8 + static_cast<int64_t>(rng.nextBelow(33));
    cfg.tile_i = 4 + static_cast<int64_t>(rng.nextBelow(29));
    cfg.tile_j = 4 + static_cast<int64_t>(rng.nextBelow(29));
    const auto &variants = allPsmVariants();
    PsmVariant v = variants[rng.nextBelow(variants.size())];
    std::string label = "psm/" + std::string(psmVariantName(v)) +
                        " n0=" + std::to_string(cfg.n0) +
                        " n1=" + std::to_string(cfg.n1);
    return diffStreaming(label, [&](auto &mem, auto &arena) {
        return runPsm(v, cfg, mem, arena);
    });
}

namespace {

/** "answer 7 best=..." -> "best=..." (index-independent payload). */
std::string
stripIndex(const std::string &line)
{
    size_t first = line.find(' ');
    size_t second =
        first == std::string::npos ? first : line.find(' ', first + 1);
    return second == std::string::npos ? line : line.substr(second + 1);
}

} // namespace

OracleVerdict
checkService(const FuzzCase &c)
{
    if (!c.valid())
        return std::nullopt;

    // Small cap (same as checkSearch's large-ball mode): the oracle's
    // claim is byte-identity between the service and the direct path,
    // which the determinism contract makes independent of where the
    // search stops.
    constexpr uint64_t kVisitCap = 2'000;

    // Presentations per objective, grouped by canonical key:
    //   group A: the deps as given, reversed, and with a duplicate
    //            appended (Stencil construction sorts and dedups);
    //   group B: V + {2*v0, 3*v0} and V + {3*v0}.  2*v0 is removable
    //            once 3*v0 is present (3*v0 - 2*v0 = v0 lies in the
    //            cone) while 3*v0 alone generally is not, so the two
    //            share a canonical key that differs from group A's.
    std::vector<service::Request> reqs;
    std::vector<size_t> group_a, group_b; // indices into reqs
    auto add = [&](std::vector<IVec> deps, SearchObjective obj) {
        service::Request r;
        r.index = reqs.size() + 1;
        r.deps = std::move(deps);
        r.objective = obj;
        if (obj == SearchObjective::BoundedStorage) {
            r.isg_lo = c.lo;
            r.isg_hi = c.hi;
        }
        reqs.push_back(std::move(r));
        return reqs.size() - 1;
    };
    std::vector<IVec> rev(c.deps.rbegin(), c.deps.rend());
    std::vector<IVec> dup = c.deps;
    dup.push_back(c.deps.front());
    std::vector<IVec> with3 = c.deps;
    with3.push_back(c.deps.front() * 3);
    std::vector<IVec> with23 = with3;
    with23.push_back(c.deps.front() * 2);
    for (SearchObjective obj : {SearchObjective::ShortestVector,
                                SearchObjective::BoundedStorage}) {
        group_a.push_back(add(c.deps, obj));
        group_a.push_back(add(rev, obj));
        group_a.push_back(add(dup, obj));
        group_b.push_back(add(with23, obj));
        group_b.push_back(add(with3, obj));
    }

    std::vector<std::string> direct =
        service::runBatchDirect(reqs, kVisitCap);

    // Key-equal presentations must produce identical payloads.
    for (const auto *group : {&group_a, &group_b}) {
        for (size_t k = 1; k < group->size() / 2; ++k) {
            for (size_t half : {size_t{0}, group->size() / 2}) {
                const std::string &a = direct[(*group)[half]];
                const std::string &b = direct[(*group)[half + k]];
                if (stripIndex(a) != stripIndex(b))
                    return "key-equal presentations of " +
                           vecsStr(c.deps) + " answered '" + a +
                           "' vs '" + b + "'";
            }
        }
    }

    // The service must match the direct path byte-for-byte at every
    // cache/shard/thread configuration, and with the cache enabled
    // its lookup counters must reconcile with the request count.
    struct Config
    {
        size_t cache_bytes;
        size_t shards;
        unsigned threads;
    };
    constexpr Config kConfigs[] = {
        {64u << 20, 1, 1},
        {64u << 20, 16, 4},
        {0, 16, 2},
    };
    for (const Config &cfg : kConfigs) {
        service::ServiceOptions so;
        so.cache_bytes = cfg.cache_bytes;
        so.cache_shards = cfg.shards;
        so.max_visits = kVisitCap;
        service::MetricsRegistry metrics;
        service::QueryService svc(so, metrics);
        ThreadPool pool(cfg.threads);
        std::vector<std::string> got =
            service::runBatch(svc, reqs, pool);
        for (size_t i = 0; i < reqs.size(); ++i) {
            if (got[i] != direct[i])
                return "service (cache=" +
                       std::to_string(cfg.cache_bytes) + " threads=" +
                       std::to_string(cfg.threads) + ") answered '" +
                       got[i] + "' but direct said '" + direct[i] +
                       "'";
        }
        if (cfg.cache_bytes > 0) {
            auto st = svc.cacheStats();
            if (st.hits + st.misses != reqs.size())
                return "cache hits " + std::to_string(st.hits) +
                       " + misses " + std::to_string(st.misses) +
                       " != " + std::to_string(reqs.size()) +
                       " requests over " + vecsStr(c.deps);
            uint64_t coalesced =
                metrics.counter("service.singleflight.coalesced")
                    .value();
            if (st.hits + svc.searchesExecuted() + coalesced !=
                reqs.size())
                return "hits + searches + coalesced != requests "
                       "over " +
                       vecsStr(c.deps) +
                       " (a query was neither served from cache, "
                       "coalesced onto a flight, nor computed)";
        }
    }
    return std::nullopt;
}

namespace {

/** Parse "best=(a, b, ...)" out of an answer line. */
std::optional<IVec>
parseBestVector(const std::string &line)
{
    size_t open = line.find("best=(");
    if (open == std::string::npos)
        return std::nullopt;
    size_t close = line.find(')', open);
    if (close == std::string::npos)
        return std::nullopt;
    std::vector<int64_t> coords;
    std::stringstream ss(
        line.substr(open + 6, close - open - 6));
    std::string part;
    while (std::getline(ss, part, ',')) {
        try {
            coords.push_back(std::stoll(part));
        } catch (const std::logic_error &) {
            return std::nullopt;
        }
    }
    if (coords.empty())
        return std::nullopt;
    return IVec(std::move(coords));
}

/** Parse " key=<int>" out of a response line. */
std::optional<int64_t>
parseField(const std::string &line, const std::string &key)
{
    std::string tag = " " + key + "=";
    size_t at = line.find(tag);
    if (at == std::string::npos)
        return std::nullopt;
    try {
        return std::stoll(line.substr(at + tag.size()));
    } catch (const std::logic_error &) {
        return std::nullopt;
    }
}

} // namespace

OracleVerdict
checkFault(const FuzzCase &c)
{
    if (!c.valid())
        return std::nullopt;

    // Everything stochastic below derives from the case seed, so a
    // failure replays from the seed alone -- including the fail-point
    // streams, which are seeded registries, not wall-clock noise.
    SplitMix64 rng(c.seed ^ 0xfa17faa57ULL);
    constexpr uint64_t kVisitCap = 2'000;
    Stencil s = c.stencil();
    UovOracle oracle(s);

    // The batch: presentations of the case stencil under random
    // deadlines, plus a malformed line and an input-invalid query.
    // Presentations reorder/duplicate only, so every answer vector
    // must be universal for the original stencil.
    constexpr int64_t kDeadlines[] = {-1, -1, 0, 1, 3};
    auto draw_deadline = [&] {
        return kDeadlines[rng.nextBelow(5)];
    };
    std::vector<service::Request> reqs;
    auto add = [&](std::vector<IVec> deps, SearchObjective obj) {
        service::Request r;
        r.index = reqs.size() + 1;
        r.deps = std::move(deps);
        r.objective = obj;
        r.deadline_ms = draw_deadline();
        if (obj == SearchObjective::BoundedStorage) {
            r.isg_lo = c.lo;
            r.isg_hi = c.hi;
        }
        reqs.push_back(std::move(r));
    };
    std::vector<IVec> rev(c.deps.rbegin(), c.deps.rend());
    std::vector<IVec> dup = c.deps;
    dup.push_back(c.deps.front());
    for (SearchObjective obj : {SearchObjective::ShortestVector,
                                SearchObjective::BoundedStorage}) {
        add(c.deps, obj);
        add(rev, obj);
        add(dup, obj);
    }
    reqs.push_back(service::parseRequestLine("query bogus",
                                             reqs.size() + 1));
    {
        // Well-formed but input-invalid: the zero vector is rejected
        // by Stencil's constructor at solve time, not parse time.
        service::Request bad;
        bad.index = reqs.size() + 1;
        bad.deps = {IVec(c.deps.front().dim())};
        bad.deadline_ms = draw_deadline();
        reqs.push_back(std::move(bad));
    }

    // Seed-derived fail-point configuration over every registered
    // site; probability 0 keeps a site effectively disarmed.
    constexpr const char *kSites[] = {"cache_insert", "task_start",
                                      "answer_render"};
    constexpr double kProbs[] = {0.0, 0.25, 1.0};
    {
        failpoint::ScopedFailPoints scope;
        for (const char *site : kSites) {
            failpoint::Config config;
            config.probability = kProbs[rng.nextBelow(3)];
            config.seed = rng.next();
            config.action = rng.nextBelow(2) == 0
                                ? failpoint::Action::Throw
                                : failpoint::Action::Delay;
            config.delay_ms = 1;
            failpoint::Registry::instance().arm(site, config);
        }

        service::ServiceOptions so;
        so.cache_bytes = rng.nextBelow(2) == 0 ? 0 : (64u << 20);
        so.cache_shards = rng.nextBelow(2) == 0 ? 1 : 16;
        so.max_visits = kVisitCap;
        service::MetricsRegistry metrics;
        service::QueryService svc(so, metrics);
        ThreadPool pool(1 + static_cast<unsigned>(rng.nextBelow(4)));
        std::vector<std::string> got =
            service::runBatch(svc, reqs, pool);

        if (got.size() != reqs.size())
            return "fault batch of " + std::to_string(reqs.size()) +
                   " requests drew " + std::to_string(got.size()) +
                   " responses";
        for (size_t i = 0; i < got.size(); ++i) {
            const std::string &line = got[i];
            std::string idx = std::to_string(i + 1);
            bool is_answer = line.rfind("answer " + idx + " ", 0) == 0;
            bool is_error = line.rfind("error " + idx + " ", 0) == 0;
            if (!is_answer && !is_error)
                return "response " + idx +
                       " is mis-ordered or mangled: '" + line + "'";
            if (!is_answer)
                continue;
            if (i >= 6)
                return "deliberately bad request " + idx +
                       " drew an answer: '" + line + "'";
            auto best = parseBestVector(line);
            auto value = parseField(line, "value");
            auto initial = parseField(line, "initial");
            if (!best || !value || !initial)
                return "unparsable answer line '" + line + "'";
            if (!oracle.isUov(*best))
                return "fault answer '" + line +
                       "' is not universal for " + s.str();
            if (*value > *initial)
                return "fault answer '" + line +
                       "' is worse than the ov_o fallback";
        }

        // Reconciliation: every batch line lands in exactly one
        // response class.
        uint64_t optimal =
            metrics.counter("service.optimal").value();
        uint64_t degraded =
            metrics.counter("service.degraded").value();
        uint64_t errors =
            metrics.counter("service.request_errors").value();
        if (optimal + degraded + errors != reqs.size())
            return "optimal " + std::to_string(optimal) +
                   " + degraded " + std::to_string(degraded) +
                   " + request_errors " + std::to_string(errors) +
                   " != " + std::to_string(reqs.size()) + " requests";
    }

    // With fail points cleared, the deterministic deadline classes
    // (unbounded and 0 ms) must keep the byte-identity contract --
    // including error and degraded response lines.
    for (service::Request &r : reqs)
        if (r.deadline_ms > 0)
            r.deadline_ms = rng.nextBelow(2) == 0 ? -1 : 0;
    std::vector<std::string> direct =
        service::runBatchDirect(reqs, kVisitCap);
    service::ServiceOptions so;
    so.max_visits = kVisitCap;
    service::MetricsRegistry metrics;
    service::QueryService svc(so, metrics);
    ThreadPool pool(2);
    std::vector<std::string> got = service::runBatch(svc, reqs, pool);
    for (size_t i = 0; i < reqs.size(); ++i)
        if (got[i] != direct[i])
            return "deterministic replay diverged: service '" +
                   got[i] + "' vs direct '" + direct[i] + "'";
    return std::nullopt;
}

OracleVerdict
checkCodegen(const FuzzCase &c)
{
    // Graceful skip, not failure: sanitizer CI images may lack a C
    // compiler, and the oracle is meaningless without one.
    if (!JitCompiler::hostCompilerAvailable())
        return std::nullopt;

    Stencil s = c.stencil();
    size_t d = s.dim();

    // Realize the case as the paper's program class: one statement
    // whose reads sit at minus each dependence distance.  Clamp the
    // box so interpret + compile + run stays cheap per case.
    std::vector<int64_t> lo(d), hi(d);
    for (size_t k = 0; k < d; ++k) {
        lo[k] = c.lo[k];
        hi[k] = std::min(c.hi[k], c.lo[k] + 5);
    }
    LoopNest nest("fuzz", IVec(std::move(lo)), IVec(std::move(hi)));
    Statement st;
    st.name = "F";
    st.write = uniformAccess("F", IVec(d));
    for (const IVec &dep : s.deps()) {
        std::vector<int64_t> off(d);
        for (size_t k = 0; k < d; ++k)
            off[k] = -dep[k];
        st.reads.push_back(uniformAccess("F", IVec(std::move(off))));
    }
    nest.addStatement(st);

    std::optional<MappingPlan> plan;
    try {
        plan = planStorageMapping(nest, 0);
    } catch (const UovUserError &) {
        // A case shape the planning pipeline rejects is not a
        // codegen bug; the mapping/search oracles own that surface.
        return std::nullopt;
    }

    std::vector<double> ref = interpretKernel(nest);

    // Every applicable (schedule, storage) variant, one shared JIT so
    // repeated sources across cases hit the cache.
    struct Variant
    {
        GenSchedule schedule;
        GenStorage storage;
        std::vector<int64_t> tiles;
    };
    std::vector<Variant> variants = {
        {GenSchedule::Lexicographic, GenStorage::Expanded, {}},
        {GenSchedule::RegisterTiled, GenStorage::Expanded, {}},
    };
    // OV-mapped variants only apply when the chosen OV advances
    // dimension 0 -- otherwise the output-hyperplane convention is
    // unsound and generateC rejects (by design, not a bug).
    if (plan->mapping.ov()[0] >= 1) {
        variants.push_back(
            {GenSchedule::Lexicographic, GenStorage::OvMapped, {}});
        variants.push_back(
            {GenSchedule::RegisterTiled, GenStorage::OvMapped, {}});
    }
    // Skewed tiling needs every dependence to advance dimension 0.
    bool skewable = d == 2;
    for (const IVec &dep : s.deps())
        skewable = skewable && dep[0] >= 1;
    if (skewable) {
        SplitMix64 rng(c.seed ^ 0xC0DE6E17ULL);
        variants.push_back({GenSchedule::SkewedTiled,
                            plan->mapping.ov()[0] >= 1
                                ? GenStorage::OvMapped
                                : GenStorage::Expanded,
                            {rng.nextInRange(1, 6),
                             rng.nextInRange(1, 8)}});
    }

    JitCompiler jit;
    for (const Variant &var : variants) {
        CodegenOptions opts;
        opts.schedule = var.schedule;
        opts.storage = var.storage;
        opts.tile_sizes = var.tiles;
        opts.function_name = "uov_fuzz_kernel";
        GeneratedCode code = generateC(nest, *plan, opts);
        std::string label =
            std::string("codegen variant schedule=") +
            std::to_string(static_cast<int>(var.schedule)) +
            " storage=" +
            std::to_string(static_cast<int>(var.storage)) + " over " +
            s.str() + " box [" + nest.lo().str() + ", " +
            nest.hi().str() + "]";

        if (var.storage == GenStorage::OvMapped &&
            code.temp_cells != plan->mapping.cellCount())
            return label + ": temp array has " +
                   std::to_string(code.temp_cells) +
                   " cells, mapping.cellCount() is " +
                   std::to_string(plan->mapping.cellCount());

        JitKernel kernel = jit.compileAndLoad(code);
        std::vector<double> got(ref.size(),
                                std::numeric_limits<double>::quiet_NaN());
        kernel.fn<void (*)(double *)>(code.function_name)(got.data());
        for (size_t i = 0; i < ref.size(); ++i)
            if (got[i] != ref[i])
                return label + ": output[" + std::to_string(i) +
                       "] = " + std::to_string(got[i]) +
                       ", interpreter says " + std::to_string(ref[i]) +
                       " (unroll=" + std::to_string(code.unroll) +
                       ", jam=" + std::to_string(code.jam) + ")";
    }
    return std::nullopt;
}

OracleVerdict
checkTune(const FuzzCase &c)
{
    Stencil s = c.stencil();
    size_t d = s.dim();

    // Same box clamp as checkCodegen (tighter: tune evaluation
    // replays every candidate point-by-point, four runs per case).
    std::vector<int64_t> lo(d), hi(d);
    for (size_t k = 0; k < d; ++k) {
        lo[k] = c.lo[k];
        hi[k] = std::min(c.hi[k], c.lo[k] + 3);
    }
    IVec box_lo(std::move(lo)), box_hi(std::move(hi));

    // Every-candidate-legal probe, shared by all simulator runs: the
    // tuner promises it never evaluates an illegal configuration, so
    // a single violation anywhere is a discrepancy.
    UovOracle exact(s);
    std::string violation;
    auto probe = [&](const tune::TuneCandidate &cand, double score,
                     size_t index, int64_t) {
        if (!violation.empty())
            return;
        if (!cand.schedule.legal(s)) {
            violation = "evaluated candidate " + std::to_string(index) +
                        " has an illegal schedule: " + cand.str();
            return;
        }
        if (cand.storage == GenStorage::OvMapped &&
            (cand.uov()[0] < 1 || !exact.isUov(cand.uov())))
            violation = "evaluated OV-mapped candidate " +
                        std::to_string(index) +
                        " carries a non-UOV vector: " + cand.str();
        if (!(score >= 0.0))
            violation = "candidate " + std::to_string(index) +
                        " scored " + std::to_string(score);
    };

    tune::TuneOptions opt;
    opt.lowerable_only = false; // widest candidate space
    opt.on_candidate = probe;
    // Node-bound the embedded UOV searches: random stencils can be
    // genuinely hard, and a node budget degrades deterministically
    // (unlike a wall-clock deadline) so the replay check below still
    // has teeth.
    opt.budget.max_nodes = 20'000;

    auto runOnce = [&](const tune::TuneOptions &o)
        -> std::optional<tune::TuneResult> {
        tune::Tuner tuner(nestFromStencil(s, box_lo, box_hi, "fuzz"),
                          o);
        return tuner.run();
    };

    std::optional<tune::TuneResult> first;
    try {
        first = runOnce(opt);
    } catch (const UovUserError &) {
        // A case shape the planning pipeline rejects is not a tuner
        // bug; the mapping/search oracles own that surface.
        return std::nullopt;
    }
    if (!violation.empty())
        return violation + " over " + s.str();

    if (first->evaluated != first->candidates_total ||
        first->evaluated == 0)
        return "deadline-free tuner evaluated " +
               std::to_string(first->evaluated) + " of " +
               std::to_string(first->candidates_total) +
               " candidates over " + s.str();
    // With no deadline and no candidate cap, the only legitimate
    // degradation axis is the UOV searches' node budget.
    if (first->status == tune::TuneStatus::Optimal
            ? !first->degraded_reason.empty()
            : first->degraded_reason != "node-budget")
        return "deadline-free tune run degraded for '" +
               first->degraded_reason + "' over " + s.str();
    if (!first->best.schedule.legal(s))
        return "tune winner has an illegal schedule: " +
               first->best.str() + " over " + s.str();

    // Determinism: the simulator-evaluated tune is a pure function of
    // (nest, options) -- the winner, its score, and the evaluated
    // count must all replay exactly.
    tune::TuneResult second = *runOnce(opt);
    if (!violation.empty())
        return violation + " over " + s.str();
    if (second.best.str() != first->best.str() ||
        second.best_score != first->best_score ||
        second.evaluated != first->evaluated ||
        second.candidates_total != first->candidates_total)
        return "tune replay diverged: {" + first->best.str() +
               ", score " + std::to_string(first->best_score) + ", " +
               std::to_string(first->evaluated) + "/" +
               std::to_string(first->candidates_total) + "} vs {" +
               second.best.str() + ", score " +
               std::to_string(second.best_score) + ", " +
               std::to_string(second.evaluated) + "/" +
               std::to_string(second.candidates_total) + "} over " +
               s.str();

    // Anytime contract: an already-expired deadline still yields a
    // legal certified configuration, tagged Degraded, with exactly
    // the deterministic candidate-0 floor evaluated.
    tune::TuneOptions zero = opt;
    zero.budget.deadline = Deadline::afterMillis(0);
    tune::TuneResult floor = *runOnce(zero);
    if (!violation.empty())
        return violation + " over " + s.str();
    if (floor.status != tune::TuneStatus::Degraded ||
        floor.degraded_reason.empty())
        return "0 ms deadline tune was not Degraded over " + s.str();
    if (floor.evaluated < 1)
        return "0 ms deadline tune evaluated nothing over " + s.str();
    if (!floor.best.schedule.legal(s))
        return "0 ms deadline tune winner is illegal: " +
               floor.best.str() + " over " + s.str();

    // With a host compiler, a small lowerable-only JIT-evaluated tune:
    // JitEvaluator re-verifies every measured kernel bit-exactly
    // against the interpreter internally, so a codegen divergence
    // inside the tuner surfaces as a thrown UovError here.
    if (JitCompiler::hostCompilerAvailable()) {
        tune::JitEvalOptions jopts;
        jopts.runs = 1; // exactness is the point, not timing
        tune::JitEvaluator jit_eval(jopts);
        tune::TuneOptions measured;
        measured.lowerable_only = true;
        measured.max_candidates = 6;
        measured.budget.max_nodes = 20'000;
        measured.evaluator = &jit_eval;
        measured.on_candidate = probe;
        tune::TuneResult timed = *runOnce(measured);
        if (!violation.empty())
            return violation + " over " + s.str();
        if (timed.evaluated < 1 ||
            !timed.best.schedule.legal(s))
            return "JIT-evaluated tune returned an unevaluated or "
                   "illegal winner: " +
                   timed.best.str() + " over " + s.str();
    }

    return std::nullopt;
}

OracleVerdict
checkDurability(const FuzzCase &c)
{
    if (!c.valid())
        return std::nullopt;
    namespace fs = std::filesystem;

    // Everything stochastic -- fail-point streams, crash cut points,
    // flipped bits -- derives from the case seed: any failure replays
    // from the printed seed alone.
    SplitMix64 rng(c.seed ^ 0xd04ab1e5ULL);
    constexpr uint64_t kVisitCap = 2'000;
    Stencil s = c.stencil();
    UovOracle oracle(s);

    std::string base =
        (fs::temp_directory_path() /
         ("uov-durability-" + std::to_string(::getpid()) + "-" +
          std::to_string(c.seed)))
            .string();
    std::string store_path = base + ".log";
    std::string crash_path = base + ".crash";
    std::string svc_path = base + ".svc";
    struct Cleanup
    {
        std::vector<std::string> paths;
        ~Cleanup()
        {
            for (const auto &p : paths) {
                std::error_code ec;
                std::filesystem::remove(p, ec);
            }
        }
    } cleanup{{store_path, crash_path, svc_path}};

    // --- Phase 1: acknowledged-exactly under failing writes. -------
    // Solve a small corpus once, then append it twice (the second
    // pass exercises last-record-wins) with store_write/store_fsync
    // armed; acknowledged appends and only those must survive.
    struct Solved
    {
        service::CanonicalKey key;
        service::ServiceAnswer answer;
    };
    std::vector<Solved> corpus;
    Stencil canon = service::canonicalizeStencil(s);
    for (SearchObjective obj : {SearchObjective::ShortestVector,
                                SearchObjective::BoundedStorage}) {
        for (int64_t deadline : {int64_t{-1}, int64_t{0}}) {
            std::optional<IVec> lo, hi;
            if (obj == SearchObjective::BoundedStorage) {
                lo = c.lo;
                hi = c.hi;
            }
            SearchBudget budget;
            budget.max_nodes = kVisitCap;
            budget.deadline = Deadline::afterMillis(deadline);
            corpus.push_back(
                {service::makeKey(canon, obj, lo, hi, deadline),
                 service::solveCanonical(canon, obj, lo, hi, budget)});
        }
    }

    std::vector<std::string> acknowledged; // encoded payloads in order
    uint64_t rolled_back = 0;
    {
        failpoint::ScopedFailPoints scope;
        for (const char *site : {"store_write", "store_fsync"}) {
            failpoint::Config config;
            config.probability = 0.4;
            config.seed = rng.next();
            config.action = failpoint::Action::Throw;
            failpoint::Registry::instance().arm(site, config);
        }
        service::ResultStore store(store_path);
        for (int pass = 0; pass < 2; ++pass) {
            for (const Solved &e : corpus) {
                if (store.append(e.key, e.answer))
                    acknowledged.push_back(
                        service::ResultStore::encodePayload(e.key,
                                                            e.answer));
                else
                    ++rolled_back;
            }
        }
        auto st = store.stats();
        if (st.appends != acknowledged.size() ||
            st.append_errors != rolled_back)
            return "store counted " + std::to_string(st.appends) +
                   " appends / " + std::to_string(st.append_errors) +
                   " errors but the caller saw " +
                   std::to_string(acknowledged.size()) + " / " +
                   std::to_string(rolled_back);
    }

    auto rawPayloads = [](const service::ResultStore &store) {
        std::vector<std::string> out;
        store.forEachRaw([&](const service::CanonicalKey &k,
                             const service::ServiceAnswer &a) {
            out.push_back(
                service::ResultStore::encodePayload(k, a));
        });
        return out;
    };
    auto isPrefix = [&](const std::vector<std::string> &records) {
        if (records.size() > acknowledged.size())
            return false;
        for (size_t i = 0; i < records.size(); ++i)
            if (records[i] != acknowledged[i])
                return false;
        return true;
    };

    {
        service::ResultStore reopened(store_path);
        if (reopened.stats().truncated_bytes != 0)
            return "cleanly closed store lost " +
                   std::to_string(reopened.stats().truncated_bytes) +
                   " bytes on reopen";
        if (rawPayloads(reopened) != acknowledged)
            return "reopened store is not exactly the acknowledged "
                   "append sequence (" +
                   std::to_string(reopened.stats().records_loaded) +
                   " records vs " +
                   std::to_string(acknowledged.size()) +
                   " acknowledged)";
    }

    // --- Phase 2: kill -9 leaves a checksummed prefix. --------------
    // Truncate a copy of the log at an arbitrary byte (a crash tears
    // whatever it tears); the reopened store must hold a prefix of
    // the acknowledged sequence, and the tmp+rename repair must be
    // idempotent.
    uint64_t file_size = fs::file_size(store_path);
    for (int drill = 0; drill < 3; ++drill) {
        std::error_code ec;
        fs::copy_file(store_path, crash_path,
                      fs::copy_options::overwrite_existing, ec);
        if (ec)
            return "cannot stage crash copy: " + ec.message();
        uint64_t cut = rng.nextBelow(file_size + 1);
        fs::resize_file(crash_path, cut, ec);
        if (ec)
            return "cannot truncate crash copy: " + ec.message();
        std::vector<std::string> records;
        {
            service::ResultStore crashed(crash_path);
            records = rawPayloads(crashed);
        }
        if (!isPrefix(records))
            return "log cut at byte " + std::to_string(cut) +
                   " reopened to a non-prefix of the " +
                   std::to_string(acknowledged.size()) +
                   " acknowledged records";
        service::ResultStore again(crash_path);
        if (again.stats().truncated_bytes != 0)
            return "torn-tail repair was not idempotent at cut " +
                   std::to_string(cut);
        if (rawPayloads(again) != records)
            return "repaired log changed records at cut " +
                   std::to_string(cut);
    }

    // --- Phase 3: corruption is detected, never served. -------------
    if (file_size > 8 && !acknowledged.empty()) {
        std::error_code ec;
        fs::copy_file(store_path, crash_path,
                      fs::copy_options::overwrite_existing, ec);
        uint64_t at = 8 + rng.nextBelow(file_size - 8);
        {
            std::fstream f(crash_path, std::ios::in | std::ios::out |
                                           std::ios::binary);
            f.seekg(static_cast<std::streamoff>(at));
            char byte = 0;
            f.read(&byte, 1);
            byte = static_cast<char>(
                byte ^ (1u << rng.nextBelow(8)));
            f.seekp(static_cast<std::streamoff>(at));
            f.write(&byte, 1);
        }
        service::ResultStore corrupted(crash_path);
        auto records = rawPayloads(corrupted);
        if (!isPrefix(records) ||
            records.size() >= acknowledged.size())
            return "byte flipped at " + std::to_string(at) +
                   " survived the checksum: " +
                   std::to_string(records.size()) + " of " +
                   std::to_string(acknowledged.size()) +
                   " records served";
    }

    // --- Phase 4: restarted service, zero searches, same bytes. -----
    std::vector<IVec> rev(c.deps.rbegin(), c.deps.rend());
    std::vector<IVec> dup = c.deps;
    dup.push_back(c.deps.front());
    std::vector<service::Request> reqs;
    auto add = [&](std::vector<IVec> deps, SearchObjective obj,
                   int64_t deadline) {
        service::Request r;
        r.index = reqs.size() + 1;
        r.deps = std::move(deps);
        r.objective = obj;
        r.deadline_ms = deadline;
        if (obj == SearchObjective::BoundedStorage) {
            r.isg_lo = c.lo;
            r.isg_hi = c.hi;
        }
        reqs.push_back(std::move(r));
    };
    for (SearchObjective obj : {SearchObjective::ShortestVector,
                                SearchObjective::BoundedStorage}) {
        add(c.deps, obj, -1);
        add(rev, obj, 0);
        add(dup, obj, -1);
    }
    size_t solve_requests = reqs.size();
    reqs.push_back(service::parseRequestLine("query bogus",
                                             reqs.size() + 1));

    std::vector<std::string> direct =
        service::runBatchDirect(reqs, kVisitCap);
    std::vector<std::string> first;
    {
        service::ServiceOptions so;
        so.max_visits = kVisitCap;
        so.store_path = svc_path;
        service::MetricsRegistry metrics;
        service::QueryService svc(so, metrics);
        ThreadPool pool(2);
        first = service::runBatch(svc, reqs, pool);
        for (size_t i = 0; i < reqs.size(); ++i)
            if (first[i] != direct[i])
                return "store-backed service answered '" + first[i] +
                       "' but direct said '" + direct[i] + "'";
    }
    {
        service::ServiceOptions so;
        so.max_visits = kVisitCap;
        so.store_path = svc_path;
        // Half the cases restart cache-less, forcing every hit to
        // come from the store itself rather than the preload.
        if (rng.nextBelow(2) == 0)
            so.cache_bytes = 0;
        service::MetricsRegistry metrics;
        service::QueryService svc(so, metrics);
        ThreadPool pool(2);
        std::vector<std::string> second =
            service::runBatch(svc, reqs, pool);
        for (size_t i = 0; i < reqs.size(); ++i)
            if (second[i] != first[i])
                return "restarted store-backed service diverged: '" +
                       second[i] + "' vs '" + first[i] + "'";
        if (svc.searchesExecuted() != 0)
            return "restarted service re-ran " +
                   std::to_string(svc.searchesExecuted()) +
                   " searches instead of answering from the store";
    }

    // --- Phase 5: an unopenable store degrades, not an outage. ------
    {
        failpoint::ScopedFailPoints scope;
        failpoint::Config config;
        config.probability = 1.0;
        config.seed = rng.next();
        config.action = failpoint::Action::Throw;
        failpoint::Registry::instance().arm("store_open", config);
        service::ServiceOptions so;
        so.max_visits = kVisitCap;
        so.store_path = svc_path;
        service::MetricsRegistry metrics;
        service::QueryService svc(so, metrics);
        if (metrics.counter("service.store.open_errors").value() != 1)
            return "store_open failure was not degraded to storeless "
                   "operation";
        ThreadPool pool(2);
        std::vector<std::string> got =
            service::runBatch(svc, reqs, pool);
        for (size_t i = 0; i < reqs.size(); ++i)
            if (got[i] != direct[i])
                return "storeless-degraded service answered '" +
                       got[i] + "' but direct said '" + direct[i] +
                       "'";
    }

    // --- Phase 6: shed responses are legal certified answers. -------
    for (const service::Request &r : reqs) {
        if (!r.error.empty())
            continue;
        std::string line = service::shedRequest(r);
        if (line.find(" degraded=shed") == std::string::npos)
            return "shed response lacks degraded=shed: '" + line + "'";
        auto best = parseBestVector(line);
        auto value = parseField(line, "value");
        auto initial = parseField(line, "initial");
        if (!best || !value || !initial)
            return "unparsable shed response '" + line + "'";
        if (!oracle.isUov(*best))
            return "shed response '" + line +
                   "' is not universal for " + s.str();
        if (*value > *initial)
            return "shed response '" + line +
                   "' is worse than the ov_o floor";
    }
    {
        service::MetricsRegistry metrics;
        service::AdmissionOptions ao;
        ao.high_water = 1;
        service::AdmissionController admission(ao, metrics);
        service::ServiceOptions so;
        so.max_visits = kVisitCap;
        service::QueryService svc(so, metrics);
        ThreadPool pool(1 + static_cast<unsigned>(rng.nextBelow(4)));
        std::vector<std::string> got =
            service::runBatch(svc, reqs, pool, &admission);
        for (size_t i = 0; i < got.size(); ++i) {
            const std::string &line = got[i];
            std::string idx = std::to_string(i + 1);
            bool is_answer =
                line.rfind("answer " + idx + " ", 0) == 0;
            bool is_error = line.rfind("error " + idx + " ", 0) == 0;
            if (!is_answer && !is_error)
                return "shed-batch response " + idx +
                       " is mis-ordered or mangled: '" + line + "'";
            if (i >= solve_requests) {
                if (is_answer)
                    return "bad request " + idx +
                           " drew an answer under shedding";
                continue;
            }
            if (!is_answer)
                return "shed-batch request " + idx +
                       " drew an error: '" + line + "'";
            auto best = parseBestVector(line);
            auto value = parseField(line, "value");
            auto initial = parseField(line, "initial");
            if (!best || !value || !initial)
                return "unparsable shed-batch answer '" + line + "'";
            if (!oracle.isUov(*best))
                return "shed-batch answer '" + line +
                       "' is not universal for " + s.str();
            if (*value > *initial)
                return "shed-batch answer '" + line +
                       "' is worse than the ov_o floor";
        }
        uint64_t optimal = metrics.counter("service.optimal").value();
        uint64_t degraded =
            metrics.counter("service.degraded").value();
        uint64_t errors =
            metrics.counter("service.request_errors").value();
        if (optimal + degraded + errors != reqs.size())
            return "shed batch: optimal " + std::to_string(optimal) +
                   " + degraded " + std::to_string(degraded) +
                   " + request_errors " + std::to_string(errors) +
                   " != " + std::to_string(reqs.size()) + " requests";
        uint64_t admitted =
            metrics.counter("service.shed.admitted").value();
        uint64_t shed =
            metrics.counter("service.shed.responses").value();
        if (admitted + shed != solve_requests)
            return "admission decisions " +
                   std::to_string(admitted + shed) +
                   " != " + std::to_string(solve_requests) +
                   " solve requests";
    }

    // --- Phase 7: a throwing admission site is one error line. ------
    {
        failpoint::ScopedFailPoints scope;
        failpoint::Config config;
        config.probability = 1.0;
        config.seed = rng.next();
        config.action = failpoint::Action::Throw;
        failpoint::Registry::instance().arm("admission", config);
        service::MetricsRegistry metrics;
        service::AdmissionOptions ao;
        ao.high_water = 4;
        service::AdmissionController admission(ao, metrics);
        service::ServiceOptions so;
        so.max_visits = kVisitCap;
        service::QueryService svc(so, metrics);
        ThreadPool pool(2);
        std::vector<std::string> got =
            service::runBatch(svc, reqs, pool, &admission);
        for (size_t i = 0; i < solve_requests; ++i)
            if (got[i].rfind("error ", 0) != 0)
                return "admission fail point did not isolate request " +
                       std::to_string(i + 1) + ": '" + got[i] + "'";
        uint64_t optimal = metrics.counter("service.optimal").value();
        uint64_t degraded =
            metrics.counter("service.degraded").value();
        uint64_t errors =
            metrics.counter("service.request_errors").value();
        if (optimal + degraded + errors != reqs.size())
            return "admission-fault batch counters do not reconcile";
    }

    return std::nullopt;
}

} // namespace fuzz
} // namespace uov
