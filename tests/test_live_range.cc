/**
 * @file
 * Live-range analysis tests: the lower-bound property against every
 * storage mapping, tightness against the paper's storage-optimized
 * codes, and schedule sensitivity.
 */

#include <gtest/gtest.h>

#include "analysis/live_range.h"
#include "core/search.h"
#include "mapping/storage_mapping.h"
#include "schedule/legality.h"
#include "schedule/schedule_specific.h"

namespace uov {
namespace {

TEST(LiveRange, SimpleExampleUnderLexMatchesStorageOptimized)
{
    // Figure 1(c) uses m+2 cells; the true lower bound under the
    // original schedule is about one row plus the diagonal carry.
    int64_t n = 12, m = 9;
    Stencil s = stencils::simpleExample();
    LiveRangeResult r = maxLiveValues(LexSchedule::identity(2),
                                      IVec{1, 1}, IVec{n, m}, s);
    EXPECT_GE(r.max_live, m);
    EXPECT_LE(r.max_live, m + 2);
    EXPECT_EQ(r.points, static_cast<uint64_t>(n * m));
    EXPECT_GT(r.avg_live, 0.0);
}

TEST(LiveRange, FivePointUnderLexMatchesStorageOptimized)
{
    // Table 1's L+3: the in-place row plus three temporaries.
    int64_t steps = 8, len = 32;
    Stencil s = stencils::fivePoint();
    LiveRangeResult r = maxLiveValues(LexSchedule::identity(2),
                                      IVec{1, 0}, IVec{steps, len - 1},
                                      s);
    EXPECT_GE(r.max_live, len - 2);
    EXPECT_LE(r.max_live, len + 3);
}

TEST(LiveRange, LowerBoundsEveryMapping)
{
    // cells(any mapping) >= max-live under any legal schedule.
    Stencil s = stencils::simpleExample();
    IVec lo{1, 1}, hi{14, 14};
    Polyhedron isg = Polyhedron::box(lo, hi);

    SearchResult uov =
        BranchBoundSearch(s, SearchObjective::ShortestVector).run();
    StorageMapping sm = StorageMapping::create(uov.best_uov, isg);

    std::vector<std::unique_ptr<Schedule>> scheds;
    scheds.push_back(
        std::make_unique<LexSchedule>(LexSchedule::identity(2)));
    scheds.push_back(
        std::make_unique<LexSchedule>(std::vector<size_t>{1, 0}));
    scheds.push_back(std::make_unique<WavefrontSchedule>(IVec{2, 1}));
    scheds.push_back(std::make_unique<TiledSchedule>(
        TiledSchedule::rectangular({4, 4})));
    scheds.push_back(std::make_unique<RandomTopoSchedule>(s, 3));

    for (const auto &sched : scheds) {
        LiveRangeResult r = maxLiveValues(*sched, lo, hi, s);
        EXPECT_GE(sm.cellCount(), r.max_live) << sched->name();
    }
}

TEST(LiveRange, ScheduleSpecificOvSitsNearItsBound)
{
    // The schedule-given optimum cannot beat the live-value bound of
    // its own schedule, and lands within a small factor of it.
    Stencil s = stencils::simpleExample();
    IVec lo{0, 0}, hi{15, 15};
    IVec h{2, 1};
    ScheduleSpecificResult spec =
        bestOvForLinearSchedule(h, s, Polyhedron::box(lo, hi));
    LiveRangeResult bound =
        maxLiveValues(WavefrontSchedule(h), lo, hi, s);
    EXPECT_GE(spec.objective, bound.max_live);
    EXPECT_LE(spec.objective, 3 * bound.max_live);
}

TEST(LiveRange, WavefrontNeedsMoreLiveThanLexHere)
{
    // Live demand depends on the schedule: the diagonal wavefront of
    // the simple example keeps more values in flight than row-major.
    Stencil s = stencils::simpleExample();
    IVec lo{1, 1}, hi{16, 16};
    int64_t lex =
        maxLiveValues(LexSchedule::identity(2), lo, hi, s).max_live;
    int64_t wave =
        maxLiveValues(WavefrontSchedule(IVec{1, 1}), lo, hi, s)
            .max_live;
    EXPECT_GT(wave, lex);
}

TEST(LiveRange, NoConsumersMeansOneLiveValue)
{
    // A stencil whose only dependence leaves the tiny box: every
    // value dies immediately.
    Stencil s({IVec{5, 0}});
    LiveRangeResult r = maxLiveValues(LexSchedule::identity(2),
                                      IVec{0, 0}, IVec{3, 3}, s);
    EXPECT_EQ(r.max_live, 1);
}

} // namespace
} // namespace uov
