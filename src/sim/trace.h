/**
 * @file
 * Address-trace recording and replay.
 *
 * TraceRecorder is a memory policy (like SimMem) that captures the
 * exact access stream a kernel produces; traces can be replayed
 * through any MemorySystem, diffed, or summarized.  This is the
 * glue for trace-driven experiments: record once, replay across all
 * three machine models without re-running the kernel.
 *
 * Storage is tuned for the 1e7-point scaling sweeps: each event packs
 * into 8 bytes (kind tagged in the high bits of the address word) and
 * events live in fixed-size chunks, so recording never copies the
 * events already captured the way a doubling std::vector would and
 * reserve() can preallocate a sweep's worth up front.  Compute hints
 * are recorded as events too, which makes replay() reproduce a direct
 * SimMem run's cycle count bit-for-bit (see StreamingSim's regression
 * test) -- the hint is stored as float bits, exact for the small
 * constant costs the kernels charge.
 */

#ifndef UOV_SIM_TRACE_H
#define UOV_SIM_TRACE_H

#include <bit>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/machine.h"
#include "sim/memory_policy.h"
#include "support/error.h"

namespace uov {

/**
 * One recorded event, packed into 8 bytes: the kind lives in the top
 * two bits, the low 62 bits hold the payload (byte address for
 * loads/stores, zero for branches, float bits for compute hints).
 */
class TraceEvent
{
  public:
    enum class Kind : uint8_t { Load = 0, Store = 1, Branch = 2,
                                Compute = 3 };

    static constexpr unsigned kKindShift = 62;
    static constexpr uint64_t kPayloadMask =
        (uint64_t{1} << kKindShift) - 1;

    TraceEvent() = default;

    TraceEvent(Kind kind, uint64_t payload)
        : _bits((static_cast<uint64_t>(kind) << kKindShift) |
                (payload & kPayloadMask))
    {
    }

    /** A compute-hint event charging @p cycles (float precision). */
    static TraceEvent
    compute(double cycles)
    {
        return TraceEvent(
            Kind::Compute,
            std::bit_cast<uint32_t>(static_cast<float>(cycles)));
    }

    Kind kind() const { return static_cast<Kind>(_bits >> kKindShift); }
    uint64_t addr() const { return _bits & kPayloadMask; }

    double
    computeCycles() const
    {
        return std::bit_cast<float>(
            static_cast<uint32_t>(_bits & kPayloadMask));
    }

    bool operator==(const TraceEvent &o) const = default;

  private:
    uint64_t _bits = 0;
};

static_assert(sizeof(TraceEvent) == 8,
              "TraceEvent must stay 8 bytes; 1e7-point sweeps record "
              "hundreds of millions of them");

/**
 * A recorded access stream, stored in fixed-size chunks so recording
 * is append-only (no reallocation copies, bounded slack).
 */
class Trace
{
  public:
    /** Events per chunk (8 MiB of trace each). */
    static constexpr size_t kChunkEvents = size_t{1} << 20;

    void
    record(TraceEvent::Kind kind, uint64_t addr)
    {
        append(TraceEvent(kind, addr));
        switch (kind) {
          case TraceEvent::Kind::Load: ++_loads; break;
          case TraceEvent::Kind::Store: ++_stores; break;
          case TraceEvent::Kind::Branch: ++_branches; break;
          case TraceEvent::Kind::Compute: break;
        }
    }

    void
    recordCompute(double cycles)
    {
        append(TraceEvent::compute(cycles));
    }

    /** Preallocate chunk capacity for @p n events. */
    void reserve(size_t n);

    size_t size() const { return _size; }

    /** The i-th event (chunk-indexed; O(1)). */
    TraceEvent
    at(size_t i) const
    {
        UOV_REQUIRE(i < _size, "event index " << i << " out of range");
        return _chunks[i / kChunkEvents][i % kChunkEvents];
    }

    /** Visit every event in record order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &chunk : _chunks)
            for (const TraceEvent &e : chunk)
                fn(e);
    }

    uint64_t loadCount() const { return _loads; }
    uint64_t storeCount() const { return _stores; }
    uint64_t branchCount() const { return _branches; }

    /** Distinct bytes touched (footprint), line-granular. */
    uint64_t footprintBytes(int64_t line_bytes = 64) const;

    /**
     * Replay through a memory system; returns total cycles.  Compute
     * hints are replayed in stream order, so the result matches a
     * direct SimMem run bit-for-bit.
     */
    double replay(MemorySystem &ms) const;

    /** Compact text summary. */
    std::string summary() const;

  private:
    void
    append(TraceEvent e)
    {
        size_t c = _size / kChunkEvents;
        if (c == _chunks.size()) {
            _chunks.emplace_back();
            _chunks.back().reserve(kChunkEvents);
        }
        _chunks[c].push_back(e);
        ++_size;
    }

    std::vector<std::vector<TraceEvent>> _chunks;
    size_t _size = 0;
    uint64_t _loads = 0;
    uint64_t _stores = 0;
    uint64_t _branches = 0;
};

/** Memory policy that records while computing real results. */
struct TracingMem
{
    Trace *trace;
    double compute_cycles = 0; ///< accumulated kernel compute hints

    template <typename T>
    T
    load(const SimBuffer<T> &b, size_t i)
    {
        trace->record(TraceEvent::Kind::Load, b.addr(i));
        return b.data()[i];
    }

    template <typename T>
    void
    store(SimBuffer<T> &b, size_t i, T v)
    {
        trace->record(TraceEvent::Kind::Store, b.addr(i));
        b.data()[i] = v;
    }

    void branch() { trace->record(TraceEvent::Kind::Branch, 0); }

    void
    compute(double c)
    {
        trace->recordCompute(c);
        compute_cycles += c;
    }
};

} // namespace uov

#endif // UOV_SIM_TRACE_H
