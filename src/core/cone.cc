#include "core/cone.h"

#include "support/checked.h"
#include "support/error.h"

namespace uov {

ConeSolver::ConeSolver(Stencil stencil, uint64_t max_nodes)
    : _stencil(std::move(stencil)), _max_nodes(max_nodes)
{
    _h = _stencil.positiveFunctional();
    for (size_t c = 0; c < _stencil.dim(); ++c) {
        if (_stencil.allNonNegativeInCoord(c))
            _non_neg_coords.push_back(c);
        if (_stencil.allNonPositiveInCoord(c))
            _non_pos_coords.push_back(c);
    }

    if (!_h) {
        // Without a positive functional we must still guarantee
        // termination: require some coordinate in which every
        // dependence strictly advances.
        bool ok = false;
        for (size_t c = 0; c < _stencil.dim() && !ok; ++c) {
            bool strict = true;
            for (const auto &v : _stencil.deps())
                if (v[c] <= 0)
                    strict = false;
            ok = strict;
        }
        UOV_REQUIRE(ok, "stencil " << _stencil.str()
                        << " defeats both the exact positive functional "
                           "(overflow) and component-wise termination");
    }
}

bool
ConeSolver::prunedOut(const IVec &w) const
{
    for (size_t c : _non_neg_coords)
        if (w[c] < 0)
            return true;
    for (size_t c : _non_pos_coords)
        if (w[c] > 0)
            return true;
    if (_h) {
        // h . w == sum a_i (h . v_i) with every h . v_i > 0, so any
        // nonzero cone member has h . w > 0.
        int64_t hw = _h->dot(w);
        if (hw < 0 || (hw == 0 && !w.isZero()))
            return true;
    }
    return false;
}

bool
ConeSolver::search(const IVec &w, uint32_t depth)
{
    if (w.isZero())
        return true;
    if (prunedOut(w))
        return false;

    auto it = _memo.find(w);
    if (it != _memo.end())
        return it->second;

    ++_nodes;
    UOV_REQUIRE(_nodes <= _max_nodes,
                "cone membership search budget of " << _max_nodes
                    << " nodes exceeded (stencil " << _stencil.str() << ")");
    UOV_CHECK(depth < 1u << 20, "cone search depth runaway");

    bool found = false;
    for (const auto &v : _stencil.deps()) {
        if (search(w - v, depth + 1)) {
            found = true;
            break;
        }
    }
    _memo.emplace(w, found);
    return found;
}

bool
ConeSolver::contains(const IVec &w)
{
    UOV_REQUIRE(w.dim() == _stencil.dim(),
                "vector dimension " << w.dim() << " != stencil dimension "
                                    << _stencil.dim());
    return search(w, 0);
}

std::optional<std::vector<int64_t>>
ConeSolver::certificate(const IVec &w)
{
    if (!contains(w))
        return std::nullopt;

    std::vector<int64_t> coeffs(_stencil.size(), 0);
    IVec rest = w;
    // Greedy reconstruction: at each step some v_i must lead to a
    // residue still in the cone (contains() is memoized, so this walk
    // is cheap).
    while (!rest.isZero()) {
        bool stepped = false;
        for (size_t i = 0; i < _stencil.size(); ++i) {
            IVec next = rest - _stencil.dep(i);
            if (contains(next)) {
                ++coeffs[i];
                rest = next;
                stepped = true;
                break;
            }
        }
        UOV_CHECK(stepped, "certificate reconstruction stalled at "
                               << rest.str());
    }
    return coeffs;
}

} // namespace uov
