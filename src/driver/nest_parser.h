/**
 * @file
 * A small text format for loop nests, so the uovc driver (and tests)
 * can consume programs without writing C++:
 *
 *     # comments and blank lines are ignored
 *     nest stencil5
 *     bounds 1..18 0..99        # one lo..hi range per dimension
 *     statement B
 *       write B[0,0]
 *       read  B[-1,-2]
 *       read  B[-1,-1]
 *       read  B[-1,0]
 *       read  B[-1,1]
 *       read  B[-1,2]
 *
 * Accesses are uniform: NAME[o1,o2,...] means NAME[q + (o1,o2,...)].
 * Multiple `statement` blocks build multi-assignment nests.
 */

#ifndef UOV_DRIVER_NEST_PARSER_H
#define UOV_DRIVER_NEST_PARSER_H

#include <istream>
#include <string>

#include "ir/program.h"

namespace uov {

/**
 * Parse one nest description.
 * @throws UovUserError with a line-numbered message on malformed input
 */
LoopNest parseNest(std::istream &in);

/** Convenience overload for strings. */
LoopNest parseNestString(const std::string &text);

/** Serialize a nest back to the text format (round-trip tested). */
std::string formatNest(const LoopNest &nest);

} // namespace uov

#endif // UOV_DRIVER_NEST_PARSER_H
