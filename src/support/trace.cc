#include "support/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "support/json.h"

namespace uov {
namespace trace {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

/**
 * One thread's ring of events.  Only the owning thread pushes; any
 * thread may read [0, count) after an acquire load of count, because
 * a published slot is never overwritten (drop-newest: once the ring
 * is full, new events are counted as drops and discarded).
 */
struct ThreadBuffer
{
    ThreadBuffer(size_t capacity, uint32_t tid_, std::string name)
        : slots(capacity), tid(tid_), thread_name(std::move(name))
    {
    }

    std::vector<Event> slots;
    std::atomic<size_t> count{0};
    std::atomic<uint64_t> dropped{0};
    uint32_t tid;
    std::string thread_name; ///< read/written under the Impl mutex

    void
    push(const Event &e)
    {
        size_t n = count.load(std::memory_order_relaxed);
        if (n >= slots.size()) {
            dropped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        slots[n] = e;
        count.store(n + 1, std::memory_order_release);
    }
};

/** Per-thread buffer pointer, validated against the tracer's epoch. */
struct TlsCache
{
    ThreadBuffer *buffer = nullptr;
    uint64_t epoch = 0;
};

thread_local TlsCache t_cache;
thread_local std::string t_thread_name;

/** Append one arg as `"key":value` JSON. */
void
writeArg(std::ostream &os, const Arg &a)
{
    os << "\"" << jsonEscape(a.key) << "\":";
    switch (a.type) {
      case Arg::Type::Int:
        os << a.i;
        break;
      case Arg::Type::Dbl:
        os << a.d;
        break;
      case Arg::Type::Str:
        os << "\"" << jsonEscape(a.s) << "\"";
        break;
      case Arg::Type::None:
        os << "null";
        break;
    }
}

/** Microsecond timestamp with exact nanosecond fraction. */
void
writeTs(std::ostream &os, int64_t ts_ns)
{
    char frac[8];
    std::snprintf(frac, sizeof frac, "%03d",
                  static_cast<int>(ts_ns % 1000));
    os << ts_ns / 1000 << "." << frac;
}

void
writeEvent(std::ostream &os, const Event &e, uint32_t tid, bool &first)
{
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"ph\":\""
       << e.phase << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
    writeTs(os, e.ts_ns);
    if (e.phase == 'i')
        os << ",\"s\":\"t\"";
    if (e.nargs > 0) {
        os << ",\"args\":{";
        for (int a = 0; a < e.nargs; ++a) {
            if (a)
                os << ",";
            writeArg(os, e.args[a]);
        }
        os << "}";
    }
    os << "}";
}

} // namespace

struct Tracer::Impl
{
    mutable std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    /** Bumped by clear() so cached per-thread pointers re-register. */
    std::atomic<uint64_t> epoch{1};
    size_t capacity = Tracer::kDefaultCapacity;
    std::chrono::steady_clock::time_point t0;
    uint32_t next_tid = 1;

    int64_t
    nowNs() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

    /** The calling thread's buffer, creating and registering one on
     *  first use (or after clear() invalidated the cache). */
    ThreadBuffer *
    acquireBuffer()
    {
        uint64_t epoch_now = epoch.load(std::memory_order_acquire);
        if (t_cache.buffer != nullptr && t_cache.epoch == epoch_now)
            return t_cache.buffer;
        std::lock_guard<std::mutex> lock(mutex);
        auto buffer = std::make_shared<ThreadBuffer>(
            capacity, next_tid++, t_thread_name);
        buffers.push_back(buffer);
        t_cache.buffer = buffer.get();
        t_cache.epoch = epoch.load(std::memory_order_relaxed);
        return t_cache.buffer;
    }
};

Tracer::Tracer() : _impl(new Impl) {}

Tracer::~Tracer()
{
    // The Impl is deliberately immortal (still reachable through the
    // function-local static, so leak checkers stay quiet): worker
    // threads may outlive static destruction order guarantees, and a
    // freed buffer under a live recorder is worse than 48 bytes.
    detail::g_enabled.store(false, std::memory_order_release);
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable(size_t capacity)
{
    std::lock_guard<std::mutex> lock(_impl->mutex);
    if (detail::g_enabled.load(std::memory_order_relaxed))
        return;
    if (_impl->buffers.empty()) {
        _impl->capacity = capacity == 0 ? 1 : capacity;
        _impl->t0 = std::chrono::steady_clock::now();
    }
    detail::g_enabled.store(true, std::memory_order_release);
}

void
Tracer::disable()
{
    detail::g_enabled.store(false, std::memory_order_release);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(_impl->mutex);
    _impl->buffers.clear();
    _impl->next_tid = 1;
    _impl->t0 = std::chrono::steady_clock::now();
    _impl->epoch.fetch_add(1, std::memory_order_release);
}

uint64_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(_impl->mutex);
    uint64_t n = 0;
    for (const auto &b : _impl->buffers)
        n += b->count.load(std::memory_order_acquire);
    return n;
}

uint64_t
Tracer::droppedCount() const
{
    std::lock_guard<std::mutex> lock(_impl->mutex);
    uint64_t n = 0;
    for (const auto &b : _impl->buffers)
        n += b->dropped.load(std::memory_order_relaxed);
    return n;
}

void
Tracer::beginEvent(const char *name)
{
    if (!tracingEnabled())
        return;
    // Pair with the release store in enable(): everything written
    // before tracing went live (t0, capacity) is visible here.
    std::atomic_thread_fence(std::memory_order_acquire);
    Event e;
    e.name = name;
    e.phase = 'B';
    e.ts_ns = _impl->nowNs();
    _impl->acquireBuffer()->push(e);
}

void
Tracer::endEvent(const char *name, const Arg *args, int nargs)
{
    if (!tracingEnabled())
        return;
    std::atomic_thread_fence(std::memory_order_acquire);
    Event e;
    e.name = name;
    e.phase = 'E';
    e.ts_ns = _impl->nowNs();
    for (int a = 0; a < nargs && a < Event::kMaxArgs; ++a)
        e.args[e.nargs++] = args[a];
    _impl->acquireBuffer()->push(e);
}

void
Tracer::counterEvent(const char *name, const char *key, int64_t value)
{
    if (!tracingEnabled())
        return;
    std::atomic_thread_fence(std::memory_order_acquire);
    Event e;
    e.name = name;
    e.phase = 'C';
    e.ts_ns = _impl->nowNs();
    e.nargs = 1;
    e.args[0].key = key;
    e.args[0].type = Arg::Type::Int;
    e.args[0].i = value;
    _impl->acquireBuffer()->push(e);
}

void
Tracer::instantEvent(const char *name, const Arg *args, int nargs)
{
    if (!tracingEnabled())
        return;
    std::atomic_thread_fence(std::memory_order_acquire);
    Event e;
    e.name = name;
    e.phase = 'i';
    e.ts_ns = _impl->nowNs();
    for (int a = 0; a < nargs && a < Event::kMaxArgs; ++a)
        e.args[e.nargs++] = args[a];
    _impl->acquireBuffer()->push(e);
}

void
Tracer::setCurrentThreadName(const std::string &name)
{
    t_thread_name = name;
    Impl *impl = instance()._impl;
    std::lock_guard<std::mutex> lock(impl->mutex);
    for (auto &b : impl->buffers)
        if (b.get() == t_cache.buffer)
            b->thread_name = name;
}

void
Tracer::writeChromeJson(std::ostream &os) const
{
    // Snapshot the buffer list (and names) under the mutex; event
    // slots themselves are safe to read lock-free via the acquire
    // load of each count.
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::vector<std::string> names;
    uint64_t dropped = 0;
    {
        std::lock_guard<std::mutex> lock(_impl->mutex);
        buffers = _impl->buffers;
        names.reserve(buffers.size());
        for (const auto &b : buffers) {
            names.push_back(b->thread_name);
            dropped += b->dropped.load(std::memory_order_relaxed);
        }
    }

    os << "{\"traceEvents\":[";
    bool first = true;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"tid\":0,\"args\":{\"name\":\"uov\"}}";

    for (size_t bi = 0; bi < buffers.size(); ++bi) {
        const ThreadBuffer &b = *buffers[bi];
        if (!names[bi].empty()) {
            os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\","
                  "\"pid\":1,\"tid\":"
               << b.tid << ",\"args\":{\"name\":\""
               << jsonEscape(names[bi]) << "\"}}";
        }
        size_t n = b.count.load(std::memory_order_acquire);
        // Drop-newest keeps the recorded prefix intact, so B/E pairs
        // can only be unbalanced by truncation at the tail: track
        // open spans and close them after the walk.  An E with no
        // open B (a span that straddled enable()) is skipped.
        std::vector<const char *> open;
        int64_t last_ts = 0;
        for (size_t i = 0; i < n; ++i) {
            const Event &e = b.slots[i];
            last_ts = e.ts_ns;
            if (e.phase == 'E') {
                if (open.empty())
                    continue;
                open.pop_back();
            } else if (e.phase == 'B') {
                open.push_back(e.name);
            }
            writeEvent(os, e, b.tid, first);
        }
        while (!open.empty()) {
            Event e;
            e.name = open.back();
            e.phase = 'E';
            e.ts_ns = last_ts;
            open.pop_back();
            writeEvent(os, e, b.tid, first);
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
          "\"droppedEvents\":\""
       << dropped << "\"}}\n";
}

std::vector<SpanSummary>
Tracer::summarize() const
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(_impl->mutex);
        buffers = _impl->buffers;
    }

    struct Totals
    {
        uint64_t count = 0;
        int64_t total_ns = 0;
        int64_t self_ns = 0;
    };
    std::map<std::string, Totals> totals;

    struct Open
    {
        const char *name;
        int64_t begin_ns;
        int64_t child_ns = 0;
    };
    for (const auto &bp : buffers) {
        const ThreadBuffer &b = *bp;
        size_t n = b.count.load(std::memory_order_acquire);
        std::vector<Open> stack;
        int64_t last_ts = 0;
        auto close = [&](int64_t end_ns) {
            Open span = stack.back();
            stack.pop_back();
            int64_t dur = end_ns - span.begin_ns;
            Totals &t = totals[span.name];
            ++t.count;
            t.total_ns += dur;
            t.self_ns += dur - span.child_ns;
            if (!stack.empty())
                stack.back().child_ns += dur;
        };
        for (size_t i = 0; i < n; ++i) {
            const Event &e = b.slots[i];
            last_ts = e.ts_ns;
            if (e.phase == 'B')
                stack.push_back(Open{e.name, e.ts_ns, 0});
            else if (e.phase == 'E' && !stack.empty())
                close(e.ts_ns);
        }
        while (!stack.empty())
            close(last_ts); // truncated spans, as in the JSON export
    }

    std::vector<SpanSummary> out;
    out.reserve(totals.size());
    for (const auto &[name, t] : totals) {
        SpanSummary s;
        s.name = name;
        s.count = t.count;
        s.total_ns = t.total_ns;
        s.self_ns = t.self_ns;
        out.push_back(std::move(s));
    }
    return out;
}

Table
Tracer::summaryTable() const
{
    Table t("Trace summary");
    t.header({"Span", "Count", "Total us", "Self us"});
    for (const SpanSummary &s : summarize())
        t.addRow()
            .cell(s.name)
            .cell(static_cast<int64_t>(s.count))
            .cell(static_cast<double>(s.total_ns) / 1000.0, 1)
            .cell(static_cast<double>(s.self_ns) / 1000.0, 1);
    return t;
}

bool
Tracer::exportToFile(const std::string &path, std::string *error) const
{
    std::ofstream out(path);
    if (!out) {
        if (error != nullptr)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    writeChromeJson(out);
    out.flush();
    if (!out) {
        if (error != nullptr)
            *error = "write to '" + path + "' failed";
        return false;
    }
    return true;
}

namespace {

/**
 * UOV_TRACE=FILE arms the tracer during static initialization (before
 * main, so benches, fuzzers, and test binaries need no code) and
 * exports at static destruction.  An explicit exporter that already
 * disabled the tracer (uovd --trace) wins; the env session then does
 * nothing.
 */
struct EnvSession
{
    std::string path;

    EnvSession()
    {
        const char *p = std::getenv("UOV_TRACE");
        if (p != nullptr && *p != '\0') {
            path = p;
            Tracer::instance().enable();
        }
    }

    ~EnvSession()
    {
        if (path.empty())
            return;
        Tracer &tracer = Tracer::instance();
        if (!tracer.enabled())
            return;
        tracer.disable();
        std::string error;
        if (!tracer.exportToFile(path, &error))
            std::fprintf(stderr,
                         "[uov:warn] UOV_TRACE export failed: %s\n",
                         error.c_str());
    }
};

EnvSession g_env_session;

} // namespace

} // namespace trace
} // namespace uov
