/**
 * @file
 * Non-negative integer cone membership for a dependence stencil.
 *
 * The fundamental question behind DONE / DEAD / UOV (Section 3.1): is a
 * vector w expressible as w = sum_i a_i * v_i with every a_i a
 * non-negative integer?  This is the problem whose "for each i, with
 * a_ii >= 1" variant the paper proves NP-complete, so the solver is an
 * exact exponential-worst-case memoized search -- fast in practice
 * because real stencils are tiny (the paper's own argument, Section 7).
 *
 * Memoization is factored into ConeMemo, a per-stencil table that can
 * be shared by every component asking cone questions about the same
 * stencil (UovOracle, DoneDeadAnalysis, the search's verification and
 * certification passes): one membership subproblem is solved once per
 * stencil, not once per solver.  The memo and the solver's iterative
 * DFS stack live on bump arenas (support/arena.h), so the hot loop
 * performs no per-node heap allocation.  Sharing is single-threaded;
 * give each worker its own memo.
 */

#ifndef UOV_CORE_CONE_H
#define UOV_CORE_CONE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/stencil.h"
#include "geometry/ivec.h"
#include "support/arena.h"
#include "support/flat_map.h"

namespace uov {

/**
 * Shared per-stencil memoization state: the membership table plus the
 * derived pruning data (positive functional, single-sign coordinates).
 * Create one per stencil and hand it to every ConeSolver / UovOracle /
 * DoneDeadAnalysis working on that stencil.
 */
class ConeMemo
{
  public:
    explicit ConeMemo(Stencil stencil);

    const Stencil &stencil() const { return _stencil; }

    /** Number of memoized subproblems. */
    size_t size() const { return _map.size(); }

    /** Bytes of arena memory handed out for table + stack storage. */
    size_t
    arenaBytes() const
    {
        return _arena.bytesUsed() + _scratch.bytesUsed();
    }

  private:
    friend class ConeSolver;

    /** Tri-state memo cell; Unknown doubles as the fresh-entry value. */
    enum : uint8_t { kUnknown = 0, kNotInCone = 1, kInCone = 2 };

    Stencil _stencil;
    std::optional<IVec> _h;              ///< positive functional, if exact
    std::vector<size_t> _non_neg_coords; ///< coords with all v[c] >= 0
    std::vector<size_t> _non_pos_coords; ///< coords with all v[c] <= 0
    Arena _arena;                        ///< memo table storage
    Arena _scratch;                      ///< DFS stack, scope-reset per query
    PackedCoordMap<uint8_t> _map;
};

/** Exact decision procedure for w in cone_{Z>=0}(V), with memoization. */
class ConeSolver
{
  public:
    /**
     * @param stencil the dependence set V
     * @param max_nodes search-budget safety valve; exceeded only by
     *        adversarial instances, throws UovError
     */
    explicit ConeSolver(Stencil stencil, uint64_t max_nodes = 50'000'000);

    /** Share @p memo (and all membership already proved into it). */
    explicit ConeSolver(std::shared_ptr<ConeMemo> memo,
                        uint64_t max_nodes = 50'000'000);

    const Stencil &stencil() const { return _memo->stencil(); }

    /** The shared memo; hand it to sibling solvers over the stencil. */
    const std::shared_ptr<ConeMemo> &memo() const { return _memo; }

    /** Is w a non-negative integer combination of the stencil vectors? */
    bool contains(const IVec &w);

    /**
     * Coefficient certificate: a vector a with w == sum a_i * v_i and
     * all a_i >= 0, or nullopt when w is not in the cone.  Coefficient
     * order matches stencil().deps().
     */
    std::optional<std::vector<int64_t>> certificate(const IVec &w);

    /** Number of memoized subproblems (for search diagnostics). */
    uint64_t memoSize() const { return _memo->size(); }

    /** Recursion nodes expanded by THIS solver (memo hits are free). */
    uint64_t nodesExpanded() const { return _nodes; }

  private:
    /** Iterative DFS over the residue lattice; see cone.cc. */
    bool search(const int64_t *w);

    /** Cheap certain-rejection tests; true means "definitely not". */
    bool prunedOut(const int64_t *w) const;

    std::shared_ptr<ConeMemo> _memo;
    uint64_t _max_nodes;
    uint64_t _nodes = 0;
    std::vector<int64_t> _child; ///< per-call residue scratch
};

} // namespace uov

#endif // UOV_CORE_CONE_H
