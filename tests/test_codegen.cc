/**
 * @file
 * Code-generation tests: structural checks on the emitted C, golden
 * files pinning representative kernels, up-front option validation,
 * the register-tiling cost model, and the full compile-and-run matrix
 * -- {Lexicographic 1D/2D/3D/6D, SkewedTiled 2D, RegisterTiled} x
 * {Expanded, OvMapped} -- compared bit-exactly against
 * interpretKernel, the C++ interpreter oracle.
 */

#include <gtest/gtest.h>

#include <dlfcn.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "codegen/regcost.h"
#include "codegen_golden_cases.h"

#ifndef UOV_CODEGEN_GOLDEN_DIR
#define UOV_CODEGEN_GOLDEN_DIR ""
#endif

// Compile-and-run tests need a host C compiler; skip (not fail) when
// the environment has none, mirroring the codegen fuzz oracle.
#define UOV_SKIP_WITHOUT_CC()                                          \
    do {                                                               \
        if (!JitCompiler::hostCompilerAvailable())                     \
            GTEST_SKIP() << "no host C compiler on PATH";              \
    } while (0)

namespace uov {
namespace {

using KernelFn = void (*)(double *);

/** Compile + dlopen + run; returns the output row. */
std::vector<double>
runGenerated(const LoopNest &nest, const GeneratedCode &code)
{
    static int counter = 0;
    std::string dir = ::testing::TempDir() + "uov_codegen_" +
                      std::to_string(counter++);
    std::filesystem::create_directories(dir);
    std::string so = compileToSharedObject(code, dir);

    void *handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    EXPECT_NE(handle, nullptr) << dlerror();
    auto fn = reinterpret_cast<KernelFn>(
        dlsym(handle, code.function_name.c_str()));
    EXPECT_NE(fn, nullptr) << dlerror();

    std::vector<double> out(
        static_cast<size_t>(outputCellCount(nest)), -1.0);
    fn(out.data());
    dlclose(handle);
    return out;
}

/**
 * One matrix cell: plan, generate, assert the temporary is sized
 * exactly right for the storage discipline, compile, run, and compare
 * bit-exactly against the interpreter oracle.
 */
void
checkCase(const LoopNest &nest, GenSchedule schedule,
          GenStorage storage, std::vector<int64_t> tiles = {})
{
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.schedule = schedule;
    opts.storage = storage;
    opts.tile_sizes = std::move(tiles);
    static int id = 0;
    opts.function_name = "uov_case_" + std::to_string(id++);
    GeneratedCode code = generateC(nest, plan, opts);

    if (storage == GenStorage::OvMapped) {
        ASSERT_EQ(code.temp_cells, plan.mapping.cellCount());
    } else {
        int64_t box = 1;
        for (size_t c = 0; c < nest.depth(); ++c)
            box *= nest.hi()[c] - nest.lo()[c] + 1;
        ASSERT_EQ(code.temp_cells, box);
    }
    EXPECT_EQ(runGenerated(nest, code), interpretKernel(nest))
        << "schedule=" << static_cast<int>(schedule)
        << " storage=" << static_cast<int>(storage)
        << " unroll=" << code.unroll << " jam=" << code.jam;
}

LoopNest
chainNest1d()
{
    LoopNest nest("chain", IVec{1}, IVec{40});
    Statement s;
    s.name = "c";
    s.write = uniformAccess("C", IVec{0});
    s.reads = {uniformAccess("C", IVec{-1}),
               uniformAccess("C", IVec{-3})};
    nest.addStatement(s);
    return nest;
}

LoopNest
sixDimNest()
{
    LoopNest nest("six", IVec{1, 0, 0, 0, 0, 0},
                  IVec{3, 2, 2, 1, 2, 2});
    Statement s;
    s.name = "S";
    s.write = uniformAccess("S", IVec{0, 0, 0, 0, 0, 0});
    s.reads = {uniformAccess("S", IVec{-1, 0, 0, 0, 0, 0}),
               uniformAccess("S", IVec{-1, 1, 0, 0, -1, 0})};
    nest.addStatement(s);
    return nest;
}

TEST(Codegen, SourceStructure)
{
    LoopNest nest = nests::simpleExample(6, 8);
    MappingPlan plan = planStorageMapping(nest, 0);
    GeneratedCode code = generateC(nest, plan);

    EXPECT_EQ(code.temp_cells, plan.mapping.cellCount());
    EXPECT_NE(code.source.find("static double TMP[" +
                               std::to_string(code.temp_cells) + "]"),
              std::string::npos);
    EXPECT_NE(code.source.find("void uov_kernel(double *output)"),
              std::string::npos);
    EXPECT_NE(code.source.find("static long sm(long q0, long q1)"),
              std::string::npos);
}

TEST(Codegen, ExpandedUsesFullArray)
{
    LoopNest nest = nests::simpleExample(6, 8);
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.storage = GenStorage::Expanded;
    GeneratedCode code = generateC(nest, plan, opts);
    EXPECT_EQ(code.temp_cells, 6 * 8);
}

TEST(Codegen, RejectsNonFlowReads)
{
    LoopNest nest("n", IVec{1, 1}, IVec{4, 4});
    Statement s;
    s.name = "s";
    s.write = uniformAccess("A", IVec{0, 0});
    s.reads = {uniformAccess("A", IVec{-1, 0}),
               uniformAccess("A", IVec{0, 0})}; // import
    nest.addStatement(s);
    // Pipeline itself succeeds (one flow read), codegen must reject.
    MappingPlan plan = planStorageMapping(nest, 0);
    EXPECT_THROW(generateC(nest, plan), UovUserError);
}

// ---------------------------------------------------------------- //
// Option validation: knobs that a schedule would silently ignore    //
// are rejected up front with a message naming the offender.         //
// ---------------------------------------------------------------- //

TEST(CodegenOptionsValidation, TileSizesRejectedForLexicographic)
{
    LoopNest nest = nests::simpleExample(6, 8);
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.tile_sizes = {4, 4};
    try {
        generateC(nest, plan, opts);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("tile_sizes is only meaningful"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("lexicographic"), std::string::npos) << msg;
    }
}

TEST(CodegenOptionsValidation, TileSizesRejectedForRegisterTiled)
{
    LoopNest nest = nests::simpleExample(6, 8);
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.schedule = GenSchedule::RegisterTiled;
    opts.tile_sizes = {4};
    try {
        generateC(nest, plan, opts);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("register-tiled"), std::string::npos)
            << msg;
    }
}

TEST(CodegenOptionsValidation, UnrollRejectedForLexicographic)
{
    LoopNest nest = nests::simpleExample(6, 8);
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.unroll = 4;
    try {
        generateC(nest, plan, opts);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unroll/jam are only meaningful"),
                  std::string::npos)
            << msg;
    }
}

TEST(CodegenOptionsValidation, JamRejectedForOneDimensionalNest)
{
    LoopNest nest = chainNest1d();
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.schedule = GenSchedule::RegisterTiled;
    opts.jam = 2;
    try {
        generateC(nest, plan, opts);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no second-innermost"), std::string::npos)
            << msg;
    }
}

TEST(CodegenOptionsValidation, IllegalExplicitJamRejected)
{
    // fivePointStencil carries a (1,-1) distance: jamming the outer
    // dimension by 2 would read that value before it is written.
    LoopNest nest = nests::fivePointStencil(10, 12);
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.schedule = GenSchedule::RegisterTiled;
    opts.jam = 2;
    try {
        generateC(nest, plan, opts);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("reorders a dependence"),
                  std::string::npos)
            << msg;
    }
}

TEST(CodegenOptionsValidation, OvMappedRequiresTimeAdvancingOv)
{
    // A stencil whose only dependence lies inside the q0 = const
    // plane gets an OV with ov[0] == 0; the output-hyperplane
    // convention is unsound there and codegen must say so (found by
    // the codegen fuzz oracle).
    LoopNest nest("plane", IVec{0, 0}, IVec{3, 3});
    Statement s;
    s.name = "P";
    s.write = uniformAccess("P", IVec{0, 0});
    s.reads = {uniformAccess("P", IVec{0, -1})};
    nest.addStatement(s);
    MappingPlan plan = planStorageMapping(nest, 0);
    ASSERT_EQ(plan.mapping.ov()[0], 0);
    try {
        generateC(nest, plan);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("advances dimension 0"), std::string::npos)
            << msg;
    }
    // Expanded storage has no such constraint.
    CodegenOptions opts;
    opts.storage = GenStorage::Expanded;
    if (JitCompiler::hostCompilerAvailable()) {
        GeneratedCode code = generateC(nest, plan, opts);
        EXPECT_EQ(runGenerated(nest, code), interpretKernel(nest));
    }
}

TEST(CodegenOptionsValidation, BadFunctionNameRejected)
{
    LoopNest nest = nests::simpleExample(6, 8);
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.function_name = "1bad name";
    try {
        generateC(nest, plan, opts);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("not a valid C identifier"),
                  std::string::npos)
            << msg;
    }
}

// ---------------------------------------------------------------- //
// Register-tiling cost model.                                       //
// ---------------------------------------------------------------- //

TEST(RegCost, JamLegality)
{
    // (1,-1): lex-negative suffix after dim 0 -> jamming dim 0 by 2
    // is illegal; (1,1) alone is fine.
    std::vector<IVec> bad = {IVec{1, 0}, IVec{1, -1}};
    std::vector<IVec> good = {IVec{1, 0}, IVec{1, 1}};
    EXPECT_FALSE(jamLegal(bad, 0, 2));
    EXPECT_TRUE(jamLegal(good, 0, 2));
    // Nonzero outer prefix shields the jam dimension entirely.
    std::vector<IVec> heat = {IVec{1, 0, 0}, IVec{1, -1, 0},
                              IVec{1, 1, 0}};
    EXPECT_TRUE(jamLegal(heat, 1, 4));
}

TEST(RegCost, PickedPlanIsLegalAndFitsRegisters)
{
    std::vector<IVec> heat = {IVec{1, 0, 0}, IVec{1, 1, 0},
                              IVec{1, -1, 0}, IVec{1, 0, 1},
                              IVec{1, 0, -1}};
    RegisterPlan rp = pickRegisterPlan(heat, 3, 16, 0);
    EXPECT_GE(rp.unroll, 1);
    EXPECT_GE(rp.jam, 1);
    EXPECT_LE(rp.regs, 16);
    EXPECT_TRUE(jamLegal(heat, 1, rp.jam));
    // Unroll-and-jam must pay off on a stencil: fewer loads per
    // iteration than the 1x1 baseline's five.
    RegisterPlan base = evaluateRegisterPlan(heat, 3, 1, 1, 0);
    EXPECT_LT(rp.loadsPerIter(), base.loadsPerIter());
}

TEST(RegCost, IllegalJamNeverPicked)
{
    std::vector<IVec> dists = {IVec{1, 0}, IVec{1, -1}};
    RegisterPlan rp = pickRegisterPlan(dists, 2, 16, 0);
    EXPECT_EQ(rp.jam, 1);
}

// ---------------------------------------------------------------- //
// Golden files: the generated C for three representative triples    //
// is pinned verbatim.  Regenerate with                              //
// scripts/update_codegen_golden.sh after an intentional emitter     //
// change and review the diff.                                       //
// ---------------------------------------------------------------- //

TEST(CodegenGolden, MatchesPinnedFiles)
{
    std::string dir = UOV_CODEGEN_GOLDEN_DIR;
    ASSERT_FALSE(dir.empty());
    for (const auto &gc : golden::goldenCases()) {
        MappingPlan plan = planStorageMapping(gc.nest, 0);
        GeneratedCode code = generateC(gc.nest, plan, gc.options);
        std::ifstream in(dir + "/" + gc.name + ".golden.c");
        ASSERT_TRUE(in.good())
            << "missing golden file for '" << gc.name
            << "'; run scripts/update_codegen_golden.sh";
        std::ostringstream oss;
        oss << in.rdbuf();
        EXPECT_EQ(code.source, oss.str())
            << "emitter output drifted for '" << gc.name
            << "'; if intentional, run "
               "scripts/update_codegen_golden.sh and review the diff";
    }
}

// ---------------------------------------------------------------- //
// Compile-and-run matrix, bit-exact against interpretKernel.        //
// ---------------------------------------------------------------- //

TEST(CodegenMatrix, Lexicographic1D)
{
    UOV_SKIP_WITHOUT_CC();
    checkCase(chainNest1d(), GenSchedule::Lexicographic,
              GenStorage::Expanded);
    checkCase(chainNest1d(), GenSchedule::Lexicographic,
              GenStorage::OvMapped);
}

TEST(CodegenMatrix, Lexicographic2D)
{
    UOV_SKIP_WITHOUT_CC();
    LoopNest nest = nests::simpleExample(20, 30);
    checkCase(nest, GenSchedule::Lexicographic, GenStorage::Expanded);
    checkCase(nest, GenSchedule::Lexicographic, GenStorage::OvMapped);
}

TEST(CodegenMatrix, Lexicographic3D)
{
    UOV_SKIP_WITHOUT_CC();
    LoopNest nest = golden::heatNest3d();
    checkCase(nest, GenSchedule::Lexicographic, GenStorage::Expanded);
    checkCase(nest, GenSchedule::Lexicographic, GenStorage::OvMapped);
}

TEST(CodegenMatrix, Lexicographic6D)
{
    UOV_SKIP_WITHOUT_CC();
    LoopNest nest = sixDimNest();
    checkCase(nest, GenSchedule::Lexicographic, GenStorage::Expanded);
    checkCase(nest, GenSchedule::Lexicographic, GenStorage::OvMapped);
}

TEST(CodegenMatrix, SkewedTiled2D)
{
    UOV_SKIP_WITHOUT_CC();
    LoopNest nest = nests::fivePointStencil(18, 40);
    checkCase(nest, GenSchedule::SkewedTiled, GenStorage::Expanded,
              {5, 13});
    checkCase(nest, GenSchedule::SkewedTiled, GenStorage::OvMapped,
              {5, 13});
}

TEST(CodegenMatrix, RegisterTiled1D)
{
    UOV_SKIP_WITHOUT_CC();
    checkCase(chainNest1d(), GenSchedule::RegisterTiled,
              GenStorage::Expanded);
    checkCase(chainNest1d(), GenSchedule::RegisterTiled,
              GenStorage::OvMapped);
}

TEST(CodegenMatrix, RegisterTiled2D)
{
    UOV_SKIP_WITHOUT_CC();
    LoopNest nest = nests::fivePointStencil(18, 40);
    checkCase(nest, GenSchedule::RegisterTiled, GenStorage::Expanded);
    checkCase(nest, GenSchedule::RegisterTiled, GenStorage::OvMapped);
}

TEST(CodegenMatrix, RegisterTiled3D)
{
    UOV_SKIP_WITHOUT_CC();
    LoopNest nest = golden::heatNest3d();
    checkCase(nest, GenSchedule::RegisterTiled, GenStorage::Expanded);
    checkCase(nest, GenSchedule::RegisterTiled, GenStorage::OvMapped);
}

TEST(CodegenMatrix, RegisterTiled6D)
{
    UOV_SKIP_WITHOUT_CC();
    LoopNest nest = sixDimNest();
    checkCase(nest, GenSchedule::RegisterTiled, GenStorage::Expanded);
    checkCase(nest, GenSchedule::RegisterTiled, GenStorage::OvMapped);
}

TEST(CodegenMatrix, RegisterTiledExplicitFactors)
{
    UOV_SKIP_WITHOUT_CC();
    // heat3d's (1,*,*) distances shield the jam dimension, so any
    // explicit jam is legal; ragged bounds exercise the remainders.
    LoopNest nest = golden::heatNest3d();
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.schedule = GenSchedule::RegisterTiled;
    opts.unroll = 4;
    opts.jam = 3;
    opts.function_name = "uov_rtile_explicit";
    GeneratedCode code = generateC(nest, plan, opts);
    EXPECT_EQ(code.unroll, 4);
    EXPECT_EQ(code.jam, 3);
    EXPECT_EQ(runGenerated(nest, code), interpretKernel(nest));
}

TEST(CodegenMatrix, SkewedTiledBlockedLayout)
{
    UOV_SKIP_WITHOUT_CC();
    LoopNest nest = nests::fivePointStencil(12, 32);
    PlanOptions popts;
    popts.layout = ModLayout::Blocked;
    MappingPlan plan = planStorageMapping(nest, 0, popts);

    CodegenOptions opts;
    opts.schedule = GenSchedule::SkewedTiled;
    opts.tile_sizes = {4, 16};
    opts.function_name = "uov_tiled_blocked";
    GeneratedCode code = generateC(nest, plan, opts);

    EXPECT_EQ(runGenerated(nest, code), interpretKernel(nest));
}

TEST(CodegenMatrix, PsmNestGeneratesAndRuns)
{
    UOV_SKIP_WITHOUT_CC();
    LoopNest nest = nests::proteinMatching(15, 25);
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.function_name = "uov_psm";
    GeneratedCode code = generateC(nest, plan, opts);
    EXPECT_EQ(code.temp_cells, plan.mapping.cellCount());
    EXPECT_EQ(runGenerated(nest, code), interpretKernel(nest));
}

} // namespace
} // namespace uov
