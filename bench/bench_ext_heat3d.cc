/**
 * @file
 * Extension experiment (beyond the paper's figures): the 3-D heat
 * stencil (t, x, y) through the same pipeline -- UOV (2,0,0), two
 * planes of storage, time-skewed 3-D tiling -- swept across plane
 * sizes on the three simulated testbeds.  The paper's 2-D story
 * (natural thrashes, OV-tiled stays flat, storage-optimized is
 * untilable) recurs one dimension up.
 */

#include "bench_common.h"

#include <cmath>

#include "kernels/heat3d.h"

using namespace uov;

namespace {

double
simCyclesPerIter(Heat3DVariant v, const Heat3DConfig &cfg,
                 const MachineConfig &machine)
{
    MemorySystem ms(machine);
    SimMem mem{&ms};
    VirtualArena arena;
    runHeat3D(v, cfg, mem, arena);
    double iters = static_cast<double>(cfg.nx) *
                   static_cast<double>(cfg.ny) *
                   static_cast<double>(cfg.steps);
    return ms.cycles() / iters;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("extension: 3-D heat stencil scaling (UOV "
                  "(2,0,0), two planes)");

    std::vector<int64_t> sides = {32, 64, 128, 256, 512};
    if (opt.quick)
        sides = {32, 64, 128};

    auto machines = bench::paperMachines();
    machines[0].memory_bytes = 8ll << 20;
    machines[1].memory_bytes = 16ll << 20;
    machines[2].memory_bytes = 32ll << 20;

    for (const auto &machine : machines) {
        Table t("heat3d cycles/iteration on " + machine.name +
                " (T=8, N=M swept)");
        std::vector<std::string> header = {"N=M"};
        for (Heat3DVariant v : allHeat3DVariants())
            header.push_back(heat3DVariantName(v));
        t.header(header);

        for (int64_t n : sides) {
            Heat3DConfig cfg;
            cfg.nx = cfg.ny = n;
            cfg.steps = 8;
            cfg.tile_t = 8;
            // Tile for L1: two tile planes of tile_x*tile_y floats.
            auto side = static_cast<int64_t>(
                std::sqrt(machine.l1.size_bytes / 8.0));
            cfg.tile_x = cfg.tile_y = std::max<int64_t>(8, side);

            auto row = t.addRow();
            row.cell(formatCount(n));
            for (Heat3DVariant v : allHeat3DVariants())
                row.cell(simCyclesPerIter(v, cfg, machine), 1);
        }
        bench::emit(t, opt);
    }

    // Shape check at the largest size on the PentiumPro.
    {
        Heat3DConfig cfg;
        cfg.nx = cfg.ny = sides.back();
        cfg.steps = 8;
        cfg.tile_t = 8;
        cfg.tile_x = cfg.tile_y = 32;
        double natural =
            simCyclesPerIter(Heat3DVariant::Natural, cfg, machines[0]);
        double ov_tiled =
            simCyclesPerIter(Heat3DVariant::OvTiled, cfg, machines[0]);
        std::cerr << "shape check @ N=M=" << sides.back() << " on "
                  << machines[0].name << ": natural="
                  << formatDouble(natural, 1)
                  << " vs ov_tiled=" << formatDouble(ov_tiled, 1)
                  << " -> " << (ov_tiled < natural ? "2-D story "
                                                     "recurs in 3-D"
                                                   : "NOT reproduced")
                  << "\n";
    }
    return 0;
}
