// Flight recorder tests: ring retention, cause truncation, JSON
// shape, and the seqlock contract -- concurrent snapshots observe
// only whole digests, in seq order, while writers never block.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "telemetry/flight_recorder.h"

using namespace uov::telemetry;

namespace {

FlightDigest
digestWithIndex(uint64_t index)
{
    FlightDigest d;
    d.trace_id = 0x1000 + index;
    d.key_hash = 0x2000 + index;
    d.request_index = index;
    d.nodes = index * 10;
    d.wall_us = index;
    d.verb = FlightDigest::Verb::Shortest;
    d.outcome = FlightDigest::Outcome::Optimal;
    return d;
}

} // namespace

TEST(FlightDigest, CauseTruncatesAndRoundTrips)
{
    FlightDigest d;
    d.setCause("deadline");
    EXPECT_EQ(d.causeStr(), "deadline");

    std::string longcause(100, 'x');
    d.setCause(longcause);
    EXPECT_EQ(d.causeStr().size(), FlightDigest::kCauseBytes - 1);
    EXPECT_EQ(d.causeStr(),
              std::string(FlightDigest::kCauseBytes - 1, 'x'));

    d.setCause("");
    EXPECT_EQ(d.causeStr(), "");
}

TEST(FlightDigest, NamesAreStable)
{
    EXPECT_STREQ(FlightDigest::verbName(FlightDigest::Verb::Shortest),
                 "shortest");
    EXPECT_STREQ(FlightDigest::verbName(FlightDigest::Verb::Storage),
                 "storage");
    EXPECT_STREQ(
        FlightDigest::outcomeName(FlightDigest::Outcome::Shed),
        "shed");
    EXPECT_STREQ(
        FlightDigest::outcomeName(FlightDigest::Outcome::Error),
        "error");
}

TEST(FlightRecorder, RetainsLastKInOrder)
{
    FlightRecorder rec(8);
    EXPECT_EQ(rec.capacity(), 8u);
    for (uint64_t i = 1; i <= 20; ++i)
        rec.record(digestWithIndex(i));
    EXPECT_EQ(rec.recorded(), 20u);

    std::vector<FlightDigest> snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    // Oldest first, and exactly the last 8 recorded (seq 13..20).
    for (size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].seq, 13 + i);
        EXPECT_EQ(snap[i].request_index, 13 + i);
        EXPECT_EQ(snap[i].trace_id, 0x1000 + 13 + i);
    }
}

TEST(FlightRecorder, CapacityFloorsAtEight)
{
    FlightRecorder rec(1);
    EXPECT_GE(rec.capacity(), 8u);
}

TEST(FlightRecorder, JsonCarriesHexIdsAndOutcomes)
{
    FlightRecorder rec(8);
    FlightDigest d = digestWithIndex(1);
    d.trace_id = 0xdeadbeef;
    d.outcome = FlightDigest::Outcome::Degraded;
    d.setCause("deadline");
    rec.record(d);

    std::string json = rec.json();
    EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
    EXPECT_NE(json.find("00000000deadbeef"), std::string::npos);
    EXPECT_NE(json.find("\"outcome\":\"degraded\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cause\":\"deadline\""), std::string::npos);
}

// The seqlock contract: concurrent readers racing writers see only
// whole digests.  Writers stamp correlated fields (trace_id, key_hash
// and nodes all derived from the same index); any torn read breaks
// the correlation.
TEST(FlightRecorder, ConcurrentSnapshotsSeeWholeDigests)
{
    FlightRecorder rec(16);
    constexpr int kWriters = 4;
    constexpr uint64_t kPerWriter = 10'000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&rec, w] {
            for (uint64_t i = 0; i < kPerWriter; ++i) {
                uint64_t idx = w * kPerWriter + i;
                rec.record(digestWithIndex(idx));
            }
        });

    std::thread reader([&] {
        uint64_t snapshots = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            std::vector<FlightDigest> snap = rec.snapshot();
            uint64_t prev_seq = 0;
            for (const FlightDigest &d : snap) {
                // Whole-digest invariants (field correlation).
                ASSERT_EQ(d.trace_id, 0x1000 + d.request_index);
                ASSERT_EQ(d.key_hash, 0x2000 + d.request_index);
                ASSERT_EQ(d.nodes, d.request_index * 10);
                // Snapshot ordering invariant.
                ASSERT_GT(d.seq, prev_seq);
                prev_seq = d.seq;
            }
            ++snapshots;
        }
        EXPECT_GT(snapshots, 0u);
    });

    for (auto &t : writers)
        t.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(rec.recorded(), kWriters * kPerWriter);
    std::vector<FlightDigest> final_snap = rec.snapshot();
    EXPECT_EQ(final_snap.size(), rec.capacity());
}
