/**
 * @file
 * Code-generation tests: structural checks on the emitted C, and the
 * full loop -- generate, compile with the host C compiler, dlopen, run
 * -- comparing OV-mapped against expanded storage and against a C++
 * reference, under both the lexicographic and skewed-tiled schedules.
 */

#include <gtest/gtest.h>

#include <dlfcn.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "codegen/codegen.h"
#include "mapping/expanded_array.h"

namespace uov {
namespace {

using KernelFn = void (*)(double *);

/** C++ mirror of the generated computation (any dimension). */
std::vector<double>
referenceOutput(const LoopNest &nest)
{
    DependenceInfo deps = analyzeDependences(nest, 0);
    const IVec &lo = nest.lo();
    const IVec &hi = nest.hi();
    size_t d = nest.depth();
    constexpr int64_t kW[] = {3, 7, 11, 13, 17, 19};
    ExpandedArray<double> vals(lo, hi);
    auto bval = [&](const IVec &p) {
        int64_t acc = 1;
        for (size_t c = 0; c < p.dim(); ++c)
            acc += kW[c] * p[c];
        return static_cast<double>(acc);
    };
    // Lexicographic sweep via odometer.
    IVec q = lo;
    for (;;) {
        double v = 0.0;
        for (size_t k = 0; k < deps.reads.size(); ++k) {
            IVec p = q - deps.reads[k].distance;
            double in = vals.inBounds(p) ? vals.at(p) : bval(p);
            v += static_cast<double>(k + 1) * in;
        }
        v = 0.5 * v;
        for (size_t c = 0; c < d; ++c)
            v += (static_cast<double>(c + 1) / 1000.0) *
                 static_cast<double>(q[c]);
        vals.at(q) = v;

        size_t c = d;
        bool done = false;
        while (c-- > 0) {
            if (q[c] < hi[c]) {
                ++q[c];
                break;
            }
            q[c] = lo[c];
            if (c == 0)
                done = true;
        }
        if (done)
            break;
    }

    // Final q0-hyperplane, row-major over dims 1..d-1.
    std::vector<double> out;
    if (d == 1) {
        out.push_back(vals.at(hi));
        return out;
    }
    IVec p = lo;
    p[0] = hi[0];
    for (;;) {
        out.push_back(vals.at(p));
        size_t c = d;
        bool done = false;
        while (c-- > 1) {
            if (p[c] < hi[c]) {
                ++p[c];
                break;
            }
            p[c] = lo[c];
            if (c == 1)
                done = true;
        }
        if (done)
            break;
    }
    return out;
}

/** Compile + dlopen + run; returns the output row. */
std::vector<double>
runGenerated(const LoopNest &nest, const GeneratedCode &code)
{
    static int counter = 0;
    std::string dir = ::testing::TempDir() + "uov_codegen_" +
                      std::to_string(counter++);
    std::filesystem::create_directories(dir);
    std::string so = compileToSharedObject(code, dir);

    void *handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    EXPECT_NE(handle, nullptr) << dlerror();
    auto fn = reinterpret_cast<KernelFn>(
        dlsym(handle, code.function_name.c_str()));
    EXPECT_NE(fn, nullptr) << dlerror();

    size_t out_cells = 1;
    for (size_t c = 1; c < nest.depth(); ++c)
        out_cells *= static_cast<size_t>(nest.hi()[c] - nest.lo()[c] +
                                         1);
    std::vector<double> out(out_cells, -1.0);
    fn(out.data());
    dlclose(handle);
    return out;
}

TEST(Codegen, SourceStructure)
{
    LoopNest nest = nests::simpleExample(6, 8);
    MappingPlan plan = planStorageMapping(nest, 0);
    GeneratedCode code = generateC(nest, plan);

    EXPECT_EQ(code.temp_cells, plan.mapping.cellCount());
    EXPECT_NE(code.source.find("static double TMP[" +
                               std::to_string(code.temp_cells) + "]"),
              std::string::npos);
    EXPECT_NE(code.source.find("void uov_kernel(double *output)"),
              std::string::npos);
    EXPECT_NE(code.source.find("static long sm(long q0, long q1)"),
              std::string::npos);
}

TEST(Codegen, ExpandedUsesFullArray)
{
    LoopNest nest = nests::simpleExample(6, 8);
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.storage = GenStorage::Expanded;
    GeneratedCode code = generateC(nest, plan, opts);
    EXPECT_EQ(code.temp_cells, 6 * 8);
}

TEST(Codegen, RejectsNonFlowReads)
{
    LoopNest nest("n", IVec{1, 1}, IVec{4, 4});
    Statement s;
    s.name = "s";
    s.write = uniformAccess("A", IVec{0, 0});
    s.reads = {uniformAccess("A", IVec{-1, 0}),
               uniformAccess("A", IVec{0, 0})}; // import
    nest.addStatement(s);
    // Pipeline itself succeeds (one flow read), codegen must reject.
    MappingPlan plan = planStorageMapping(nest, 0);
    EXPECT_THROW(generateC(nest, plan), UovUserError);
}

TEST(Codegen, CompiledOvMatchesReferenceLexicographic)
{
    LoopNest nest = nests::simpleExample(20, 30);
    MappingPlan plan = planStorageMapping(nest, 0);

    CodegenOptions opts;
    opts.function_name = "uov_lex_ov";
    GeneratedCode code = generateC(nest, plan, opts);

    EXPECT_EQ(runGenerated(nest, code), referenceOutput(nest));
}

TEST(Codegen, CompiledExpandedMatchesReference)
{
    LoopNest nest = nests::simpleExample(20, 30);
    MappingPlan plan = planStorageMapping(nest, 0);

    CodegenOptions opts;
    opts.storage = GenStorage::Expanded;
    opts.function_name = "uov_lex_exp";
    GeneratedCode code = generateC(nest, plan, opts);

    EXPECT_EQ(runGenerated(nest, code), referenceOutput(nest));
}

TEST(Codegen, CompiledSkewedTiledOvMatchesReference)
{
    // The real paper pitch: OV storage chosen first, tiling applied
    // after -- generated, compiled, and still exactly right.
    LoopNest nest = nests::fivePointStencil(18, 40);
    MappingPlan plan = planStorageMapping(nest, 0);
    ASSERT_EQ(plan.search.best_uov, (IVec{2, 0}));

    CodegenOptions opts;
    opts.schedule = GenSchedule::SkewedTiled;
    opts.tile_sizes = {5, 13};
    opts.function_name = "uov_tiled_ov";
    GeneratedCode code = generateC(nest, plan, opts);

    EXPECT_EQ(runGenerated(nest, code), referenceOutput(nest));
}

TEST(Codegen, CompiledSkewedTiledBlockedLayout)
{
    LoopNest nest = nests::fivePointStencil(12, 32);
    PlanOptions popts;
    popts.layout = ModLayout::Blocked;
    MappingPlan plan = planStorageMapping(nest, 0, popts);

    CodegenOptions opts;
    opts.schedule = GenSchedule::SkewedTiled;
    opts.tile_sizes = {4, 16};
    opts.function_name = "uov_tiled_blocked";
    GeneratedCode code = generateC(nest, plan, opts);

    EXPECT_EQ(runGenerated(nest, code), referenceOutput(nest));
}

TEST(Codegen, ThreeDimensionalHeatNest)
{
    // The d-dimensional generalization end to end: 3-D heat nest,
    // UOV (2,0,0), compiled and compared.
    LoopNest nest("heat", IVec{1, 0, 0}, IVec{6, 7, 5});
    Statement s;
    s.name = "H";
    s.write = uniformAccess("H", IVec{0, 0, 0});
    s.reads = {uniformAccess("H", IVec{-1, 0, 0}),
               uniformAccess("H", IVec{-1, 1, 0}),
               uniformAccess("H", IVec{-1, -1, 0}),
               uniformAccess("H", IVec{-1, 0, 1}),
               uniformAccess("H", IVec{-1, 0, -1})};
    nest.addStatement(s);

    MappingPlan plan = planStorageMapping(nest, 0);
    ASSERT_EQ(plan.search.best_uov, (IVec{2, 0, 0}));

    CodegenOptions opts;
    opts.function_name = "uov_heat3";
    GeneratedCode code = generateC(nest, plan, opts);
    EXPECT_EQ(code.temp_cells, plan.mapping.cellCount());
    EXPECT_EQ(runGenerated(nest, code), referenceOutput(nest));
}

TEST(Codegen, OneDimensionalNest)
{
    LoopNest nest("chain", IVec{1}, IVec{40});
    Statement s;
    s.name = "c";
    s.write = uniformAccess("C", IVec{0});
    s.reads = {uniformAccess("C", IVec{-1}),
               uniformAccess("C", IVec{-3})};
    nest.addStatement(s);

    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.function_name = "uov_chain";
    GeneratedCode code = generateC(nest, plan, opts);
    EXPECT_EQ(runGenerated(nest, code), referenceOutput(nest));
}

TEST(Codegen, SkewedTiledRejectsNon2D)
{
    LoopNest nest("heat", IVec{1, 0, 0}, IVec{4, 4, 4});
    Statement s;
    s.name = "H";
    s.write = uniformAccess("H", IVec{0, 0, 0});
    s.reads = {uniformAccess("H", IVec{-1, 0, 0})};
    nest.addStatement(s);
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.schedule = GenSchedule::SkewedTiled;
    opts.tile_sizes = {2, 2};
    EXPECT_THROW(generateC(nest, plan, opts), UovUserError);
}

TEST(Codegen, PsmNestGeneratesAndRuns)
{
    LoopNest nest = nests::proteinMatching(15, 25);
    MappingPlan plan = planStorageMapping(nest, 0);
    CodegenOptions opts;
    opts.function_name = "uov_psm";
    GeneratedCode code = generateC(nest, plan, opts);
    EXPECT_EQ(code.temp_cells, plan.mapping.cellCount());
    EXPECT_EQ(runGenerated(nest, code), referenceOutput(nest));
}

} // namespace
} // namespace uov
