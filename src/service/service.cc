#include "service/service.h"

#include <chrono>

#include "support/failpoint.h"
#include "support/logging.h"
#include "support/trace.h"
#include "telemetry/trace_context.h"

namespace uov {
namespace service {

QueryService::QueryService(ServiceOptions options,
                           MetricsRegistry &metrics)
    : _options(options), _metrics(metrics),
      _cache(options.cache_bytes, options.cache_shards, &metrics),
      _requests(metrics.counter("service.requests")),
      _searches(metrics.counter("service.searches")),
      _coalesced(metrics.counter("service.singleflight.coalesced")),
      _canon_removed(metrics.counter("service.canon.removed_deps")),
      _timeouts(metrics.counter("service.timeouts")),
      _latency_us(metrics.histogram("service.latency_us"))
{
    if (_options.store_path.empty())
        return;
    // An unopenable store degrades to storeless operation: durability
    // is an amenity, availability is the contract.
    try {
        _store = std::make_unique<ResultStore>(_options.store_path,
                                               &metrics);
    } catch (const UovError &e) {
        UOV_LOG_WARN("service: store '" << _options.store_path
                     << "' unusable, running storeless: " << e.what());
        _metrics.counter("service.store.open_errors").inc();
        return;
    }
    if (_options.cache_bytes > 0) {
        size_t n = _store->preload(_cache);
        _metrics.counter("service.store.preloaded").inc(n);
    }
}

ServiceAnswer
QueryService::query(const Stencil &stencil, SearchObjective objective,
                    const std::optional<IVec> &isg_lo,
                    const std::optional<IVec> &isg_hi,
                    int64_t deadline_ms)
{
    auto start = std::chrono::steady_clock::now();
    _requests.inc();

    Stencil canonical = [&] {
        trace::Span span("service.canonicalize");
        span.arg("deps", static_cast<int64_t>(stencil.size()));
        return canonicalizeStencil(stencil);
    }();
    if (canonical.size() < stencil.size())
        _canon_removed.inc(stencil.size() - canonical.size());
    CanonicalKey key =
        makeKey(canonical, objective, isg_lo, isg_hi, deadline_ms);
    telemetry::noteKeyHash(key.hash());

    auto finish = [&](const ServiceAnswer &answer) {
        auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        _latency_us.observe(static_cast<uint64_t>(us));
        return answer;
    };

    bool use_cache = _options.cache_bytes > 0;
    if (use_cache) {
        trace::Span span("service.cache.lookup");
        auto cached = _cache.lookup(key);
        span.arg("hit", static_cast<int64_t>(cached ? 1 : 0));
        if (cached) {
            telemetry::noteCacheHit();
            return finish(*cached);
        }
    }

    // Disk store: a persisted answer short-circuits the search exactly
    // like a cache hit (and re-warms the cache so the next hit is
    // memory-speed).  Checked before single-flight -- a store hit needs
    // no dedup.
    if (_store) {
        trace::Span span("service.store.lookup");
        auto stored = _store->lookup(key);
        span.arg("hit", static_cast<int64_t>(stored ? 1 : 0));
        if (stored) {
            telemetry::noteStoreHit();
            if (use_cache)
                _cache.insert(key, *stored);
            return finish(*stored);
        }
    }

    // Single-flight: claim the key or join the thread computing it.
    std::shared_ptr<Flight> flight;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(_flights_mutex);
        auto it = _flights.find(key);
        if (it == _flights.end()) {
            flight = std::make_shared<Flight>();
            _flights.emplace(key, flight);
            owner = true;
        } else {
            flight = it->second;
        }
    }

    if (!owner) {
        _coalesced.inc();
        telemetry::noteCoalesced();
        std::unique_lock<std::mutex> lock(flight->mutex);
        flight->cv.wait(lock, [&] { return flight->done; });
        if (flight->error)
            std::rethrow_exception(flight->error);
        return finish(flight->answer);
    }

    ServiceAnswer answer;
    std::exception_ptr error;
    try {
        SearchBudget budget;
        budget.max_nodes = _options.max_visits;
        budget.deadline = Deadline::afterMillis(deadline_ms);
        {
            trace::Span span("service.search");
            answer = solveCanonical(canonical, objective, isg_lo,
                                    isg_hi, budget);
            span.arg("degraded",
                     static_cast<int64_t>(answer.degraded ? 1 : 0));
        }
        _searches.inc();
        if (answer.degraded && answer.degraded_reason == "deadline")
            _timeouts.inc();
        if (use_cache) {
            failpoint::fire("cache_insert");
            _cache.insert(key, answer);
        }
        // Persist after the search; a rolled-back append (fail point,
        // full disk) costs durability for this one answer, not the
        // answer itself.
        if (_store && _store->append(key, answer) &&
            _options.store_compact_every > 0) {
            // Periodic compaction: every Nth acknowledged append
            // rewrites the log down to the live index, so a daemon
            // that keeps re-answering its corpus bounds its log.
            uint64_t n = _appends_since_compact.fetch_add(
                             1, std::memory_order_relaxed) +
                         1;
            if (n % _options.store_compact_every == 0)
                _store->compact();
        }
    } catch (...) {
        error = std::current_exception();
    }

    // Publish to waiters (after the cache insert, so a thread that
    // sees the flight gone also sees the cached entry), then retire
    // the flight.
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->answer = answer;
        flight->error = error;
        flight->done = true;
    }
    flight->cv.notify_all();
    {
        std::lock_guard<std::mutex> lock(_flights_mutex);
        _flights.erase(key);
    }
    if (error)
        std::rethrow_exception(error);
    return finish(answer);
}

uint64_t
QueryService::searchesExecuted() const
{
    return _searches.value();
}

} // namespace service
} // namespace uov
