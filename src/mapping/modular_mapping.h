/**
 * @file
 * Modular storage mappings: cell(q) = q mod m (component-wise), the
 * storage discipline of the schedule-given literature the paper
 * compares against (Section 6, Lefebvre/Feautrier).
 *
 * Two iterations share a cell iff they differ by a lattice vector of
 * m1 Z x ... x md Z.  Such a mapping is *universally* safe iff every
 * nonzero lattice difference realizable inside the ISG is a safe
 * reuse distance (its lex-positive form is a UOV).  For most stencils
 * that forces the moduli up to the full ISG extents -- rectangular
 * modular reuse needs schedule knowledge, which is exactly why the
 * paper's occupancy *vectors* (a single lattice line, freely oriented)
 * can stay small and schedule-independent.  This module makes that
 * comparison executable:
 *
 *   - ModularMapping: the mapping itself (cells = product of moduli);
 *   - universallySafeModuli: smallest moduli safe for EVERY legal
 *     schedule (exact, via the UOV oracle);
 *   - scheduleSpecificModuli: smallest moduli safe for one linear
 *     schedule (via ovLegalForLinearSchedule).
 */

#ifndef UOV_MAPPING_MODULAR_MAPPING_H
#define UOV_MAPPING_MODULAR_MAPPING_H

#include <cstdint>
#include <vector>

#include "core/stencil.h"
#include "geometry/ivec.h"
#include "geometry/polyhedron.h"

namespace uov {

/** cell(q) = sum_k ((q_k - lo_k) mod m_k) * stride_k. */
class ModularMapping
{
  public:
    /**
     * @param moduli per-dimension moduli (>= 1)
     * @param lo ISG lower corner (normalization offset)
     */
    ModularMapping(IVec moduli, IVec lo);

    int64_t operator()(const IVec &q) const;
    int64_t cellCount() const { return _cells; }
    const IVec &moduli() const { return _m; }

    std::string str() const;

  private:
    IVec _m;
    IVec _lo;
    std::vector<int64_t> _stride;
    int64_t _cells;
};

/** Result of a moduli search. */
struct ModuliSearchResult
{
    IVec moduli;
    int64_t cells = 0;
    bool trivial = false; ///< moduli == full ISG extents (no reuse)
};

/**
 * Smallest-cell moduli whose reuse is safe under EVERY legal schedule
 * of @p stencil over the box [lo, hi].  Exact: every realizable
 * nonzero lattice difference is checked against the UOV oracle.
 * Typically returns the trivial (full-extent) moduli -- the negative
 * result motivating occupancy vectors.
 */
ModuliSearchResult universallySafeModuli(const Stencil &stencil,
                                         const IVec &lo, const IVec &hi);

/**
 * Smallest-cell moduli safe for the single linear schedule
 * sigma(q) = h.q (the Lefebvre/Feautrier setting).
 * @pre h.v > 0 for every dependence
 */
ModuliSearchResult scheduleSpecificModuli(const IVec &h,
                                          const Stencil &stencil,
                                          const IVec &lo,
                                          const IVec &hi);

} // namespace uov

#endif // UOV_MAPPING_MODULAR_MAPPING_H
