/**
 * @file
 * uovd: the UOV query service driver.
 *
 * Reads newline-delimited queries (see src/service/executor.h for the
 * protocol) from stdin or a file, answers them concurrently through
 * the canonicalizing, caching QueryService, and writes responses in
 * request order -- byte-identical to a single-threaded direct
 * core/search run, at any thread count and cache size.
 *
 *   $ echo 'query shortest deps [1,0] [0,1] [1,1]' | ./uovd
 *   answer 1 best=(1, 1) value=2 initial=4 canon=3 cert=...
 *
 *   $ echo 'query native bounds 0..17 0..99 deps [1,-1] [1,0] [1,1]' \
 *       | ./uovd
 *   answer 1 native uov=(2, 0) cells=... interp_ns=... lex_ns=...
 *
 * 'query native' JIT-compiles the OV-mapped kernel with the host C
 * compiler, verifies it bit-exactly against the interpreter, and
 * reports interpreter-vs-native timings; timing fields are wall-clock
 * and exempt from the byte-determinism contract.
 *
 *   $ ./uovd --input queries.txt --threads 8 --metrics
 *   $ ./uovd --nest examples/corpus/stencil5.nest
 *
 * --nest FILE converts a nest description (driver/nest_parser format)
 * into one shortest and one storage query over its statement-0
 * stencil and bounds, so existing corpora exercise the service path.
 * An unreadable or unparsable nest file becomes an error response
 * line, like any other bad request; the batch keeps going.
 *
 * Exit status: 0 when at least one request was answered, 1 when every
 * request in a non-empty batch drew an error line, 2 on usage
 * problems.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dependence.h"
#include "driver/nest_parser.h"
#include "service/executor.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/trace.h"
#include "support/version.h"
#include "telemetry/admin_server.h"
#include "telemetry/trace_context.h"

using namespace uov;
using namespace uov::service;

namespace {

void
usage(std::ostream &os)
{
    os <<
        "uovd " << buildVersion() << " -- UOV query service\n"
        "usage: uovd [options]\n"
        "  --input FILE      read queries from FILE (default: stdin)\n"
        "  --output FILE     write responses to FILE (default: stdout)\n"
        "  --nest FILE       add queries for a nest description\n"
        "                    (repeatable; runs before --input/stdin\n"
        "                    only when given, stdin is then skipped)\n"
        "  --threads N       worker threads (default: hardware)\n"
        "  --cache-bytes N   result cache budget (default 64 MiB)\n"
        "  --cache-shards N  cache stripe count (default 16)\n"
        "  --no-cache        disable the result cache\n"
        "  --max-visits N    branch-and-bound visit cap per query\n"
        "  --store FILE      persistent result store: append-only\n"
        "                    checksummed log, preloaded at startup so\n"
        "                    a restarted daemon answers its corpus\n"
        "                    with zero searches (torn tails truncated)\n"
        "  --shed-high N     shed load past N queued requests: answer\n"
        "                    with the certified ov_o floor\n"
        "                    (degraded=shed) instead of queueing\n"
        "                    (0 = disabled, the default)\n"
        "  --shed-low N      stop shedding once the queue drains to N\n"
        "                    (default: shed-high / 2; the hysteresis\n"
        "                    band)\n"
        "  --store-compact-every N  compact the store after every N\n"
        "                    acknowledged appends (0 = never)\n"
        "  --admin-port N    serve the admin plane on 127.0.0.1:N\n"
        "                    (/metrics /healthz /readyz /slo /flight\n"
        "                    /spans /quitquitquit; 0 = ephemeral, the\n"
        "                    bound port is printed to stderr)\n"
        "  --admin-port-file F  also write the bound port to F\n"
        "  --admin-hold      after answering the batch, keep serving\n"
        "                    the admin plane until GET /quitquitquit\n"
        "  --flight-size K   flight-recorder ring capacity\n"
        "                    (default 256 request digests)\n"
        "  --trace-ids       append ' trace_id=<16 hex>' to every\n"
        "                    response line (opt-in: the token is\n"
        "                    per-run unique, so it is exempt from the\n"
        "                    byte-determinism contract)\n"
        "  --slo-window-s N  SLO rolling window (default 60 s)\n"
        "  --slo-p50-us N    SLO latency targets in microseconds\n"
        "  --slo-p99-us N    (0 disables that percentile's target)\n"
        "  --slo-p999-us N\n"
        "  --slo-max-degraded R  SLO outcome-ratio ceilings in [0,1]\n"
        "  --slo-max-shed R      (negative disables that ceiling)\n"
        "  --slo-max-error R\n"
        "  --log-json        structured JSON log lines on stderr\n"
        "  --log-level L     error|warn|info|debug (default warn;\n"
        "                    info narrates request outcomes when the\n"
        "                    admin plane is armed)\n"
        "  --request-deadline-ms N  default per-request deadline\n"
        "                    (lines may override with 'deadline_ms N';\n"
        "                    -1 = unbounded, 0 = degrade immediately)\n"
        "  --metrics         dump the metrics table to stderr at exit\n"
        "  --metrics-json F  dump metrics as JSON to F ('-' = stderr)\n"
        "  --trace FILE      record a span trace of the batch and\n"
        "                    write Chrome trace-event JSON to FILE\n"
        "                    (open in Perfetto; summary on stderr;\n"
        "                    UOV_TRACE=FILE is the env equivalent)\n"
        "  --version         print the build version and exit\n";
}

/** Statement-0 stencil + nest bounds, as protocol request objects. */
std::vector<Request>
requestsFromNest(const LoopNest &nest, size_t &next_index,
                 int64_t deadline_ms)
{
    Stencil stencil = extractStencil(nest, 0);
    Request shortest;
    shortest.index = ++next_index;
    shortest.objective = SearchObjective::ShortestVector;
    shortest.deps = stencil.deps();
    shortest.deadline_ms = deadline_ms;

    Request storage;
    storage.index = ++next_index;
    storage.objective = SearchObjective::BoundedStorage;
    storage.deps = stencil.deps();
    storage.isg_lo = nest.lo();
    storage.isg_hi = nest.hi();
    storage.deadline_ms = deadline_ms;
    return {shortest, storage};
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input_path, output_path, metrics_json_path, trace_path;
    std::string admin_port_file;
    std::vector<std::string> nest_paths;
    unsigned threads = 0;
    bool dump_metrics = false;
    bool admin_hold = false;
    bool trace_ids = false;
    int64_t request_deadline_ms = -1;
    int64_t admin_port = -1; ///< -1 = no admin plane; 0 = ephemeral
    size_t flight_size = 256;
    ServiceOptions options;
    AdmissionOptions admission_options;
    telemetry::SloOptions slo_options;

    auto next_arg = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "uovd: " << flag << " needs a value\n";
            exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        try {
            if (a == "--help" || a == "-h") {
                usage(std::cout);
                return 0;
            } else if (a == "--version") {
                std::cout << "uovd " << buildVersion() << "\n";
                return 0;
            } else if (a == "--input") {
                input_path = next_arg(i, "--input");
            } else if (a == "--output") {
                output_path = next_arg(i, "--output");
            } else if (a == "--nest") {
                nest_paths.push_back(next_arg(i, "--nest"));
            } else if (a == "--threads") {
                threads = static_cast<unsigned>(
                    std::stoul(next_arg(i, "--threads")));
            } else if (a == "--cache-bytes") {
                options.cache_bytes =
                    std::stoull(next_arg(i, "--cache-bytes"));
            } else if (a == "--cache-shards") {
                options.cache_shards =
                    std::stoull(next_arg(i, "--cache-shards"));
            } else if (a == "--no-cache") {
                options.cache_bytes = 0;
            } else if (a == "--max-visits") {
                options.max_visits =
                    std::stoull(next_arg(i, "--max-visits"));
            } else if (a == "--store") {
                options.store_path = next_arg(i, "--store");
            } else if (a == "--shed-high") {
                admission_options.high_water =
                    std::stoll(next_arg(i, "--shed-high"));
            } else if (a == "--shed-low") {
                admission_options.low_water =
                    std::stoll(next_arg(i, "--shed-low"));
            } else if (a == "--request-deadline-ms") {
                request_deadline_ms =
                    std::stoll(next_arg(i, "--request-deadline-ms"));
            } else if (a == "--store-compact-every") {
                options.store_compact_every =
                    std::stoull(next_arg(i, "--store-compact-every"));
            } else if (a == "--admin-port") {
                admin_port =
                    std::stoll(next_arg(i, "--admin-port"));
                if (admin_port < 0 || admin_port > 65535) {
                    std::cerr << "uovd: --admin-port must be in "
                                 "[0, 65535]\n";
                    return 2;
                }
            } else if (a == "--admin-port-file") {
                admin_port_file = next_arg(i, "--admin-port-file");
            } else if (a == "--admin-hold") {
                admin_hold = true;
            } else if (a == "--flight-size") {
                flight_size =
                    std::stoull(next_arg(i, "--flight-size"));
            } else if (a == "--trace-ids") {
                trace_ids = true;
            } else if (a == "--slo-window-s") {
                slo_options.window_s =
                    std::stoll(next_arg(i, "--slo-window-s"));
            } else if (a == "--slo-p50-us") {
                slo_options.p50_us =
                    std::stoll(next_arg(i, "--slo-p50-us"));
            } else if (a == "--slo-p99-us") {
                slo_options.p99_us =
                    std::stoll(next_arg(i, "--slo-p99-us"));
            } else if (a == "--slo-p999-us") {
                slo_options.p999_us =
                    std::stoll(next_arg(i, "--slo-p999-us"));
            } else if (a == "--slo-max-degraded") {
                slo_options.max_degraded =
                    std::stod(next_arg(i, "--slo-max-degraded"));
            } else if (a == "--slo-max-shed") {
                slo_options.max_shed =
                    std::stod(next_arg(i, "--slo-max-shed"));
            } else if (a == "--slo-max-error") {
                slo_options.max_error =
                    std::stod(next_arg(i, "--slo-max-error"));
            } else if (a == "--log-json") {
                Logger::instance().setJsonMode(true);
            } else if (a == "--log-level") {
                std::string lvl = next_arg(i, "--log-level");
                if (lvl == "error")
                    Logger::instance().level(LogLevel::Error);
                else if (lvl == "warn")
                    Logger::instance().level(LogLevel::Warn);
                else if (lvl == "info")
                    Logger::instance().level(LogLevel::Info);
                else if (lvl == "debug")
                    Logger::instance().level(LogLevel::Debug);
                else {
                    std::cerr << "uovd: bad --log-level '" << lvl
                              << "'\n";
                    return 2;
                }
            } else if (a == "--metrics") {
                dump_metrics = true;
            } else if (a == "--metrics-json") {
                metrics_json_path = next_arg(i, "--metrics-json");
            } else if (a == "--trace") {
                trace_path = next_arg(i, "--trace");
            } else {
                std::cerr << "uovd: unknown option '" << a << "'\n";
                usage(std::cerr);
                return 2;
            }
        } catch (const std::logic_error &) {
            std::cerr << "uovd: bad numeric value for " << a << "\n";
            return 2;
        }
    }

    if (!trace_path.empty()) {
        trace::Tracer::setCurrentThreadName("uovd-main");
        trace::Tracer::instance().enable();
    }

    // Gather requests: nests first, then the query stream (skipped
    // when only nests were given and no explicit --input).
    std::vector<Request> requests;
    size_t next_index = 0;
    for (const auto &path : nest_paths) {
        // A bad nest file is one failed request, not a dead batch:
        // it degrades to the same per-line error protocol malformed
        // query lines use.
        auto nest_error = [&](const std::string &message) {
            Request failed;
            failed.index = ++next_index;
            failed.error = "nest '" + path + "': " + message;
            requests.push_back(std::move(failed));
        };
        std::ifstream in(path);
        if (!in) {
            nest_error("cannot open file");
            continue;
        }
        try {
            LoopNest nest = parseNest(in);
            auto reqs = requestsFromNest(nest, next_index,
                                         request_deadline_ms);
            requests.insert(requests.end(), reqs.begin(), reqs.end());
        } catch (const UovError &e) {
            nest_error(e.what());
        }
    }
    if (nest_paths.empty() || !input_path.empty()) {
        std::ifstream file;
        std::istream *in = &std::cin;
        if (!input_path.empty() && input_path != "-") {
            file.open(input_path);
            if (!file) {
                std::cerr << "uovd: cannot open input '" << input_path
                          << "'\n";
                return 2;
            }
            in = &file;
        }
        std::vector<Request> parsed =
            parseRequests(*in, request_deadline_ms);
        for (Request &r : parsed) {
            r.index = ++next_index;
            requests.push_back(std::move(r));
        }
    }

    MetricsRegistry metrics;
    QueryService svc(options, metrics);
    ThreadPool pool(threads);
    std::unique_ptr<AdmissionController> admission;
    if (admission_options.high_water > 0)
        admission = std::make_unique<AdmissionController>(
            admission_options, metrics);

    // The live telemetry plane: the flight recorder, SLO window, and
    // request trace scopes are armed by --admin-port or --trace-ids;
    // the admin socket itself only by --admin-port.
    bool plane_armed = admin_port >= 0 || trace_ids;
    std::unique_ptr<telemetry::FlightRecorder> flight;
    std::unique_ptr<telemetry::SloTracker> slo;
    std::unique_ptr<telemetry::AdminServer> admin;
    TelemetryPlane plane;
    if (plane_armed) {
        telemetry::installLoggerTraceIds();
        flight =
            std::make_unique<telemetry::FlightRecorder>(flight_size);
        slo = std::make_unique<telemetry::SloTracker>(slo_options);
        plane.flight = flight.get();
        plane.slo = slo.get();
        plane.trace_ids = trace_ids;
        plane.log_outcomes = true;
    }
    if (admin_port >= 0) {
        telemetry::AdminHooks hooks;
        hooks.metrics = &metrics;
        hooks.flight = flight.get();
        hooks.slo = slo.get();
        bool store_configured = !options.store_path.empty();
        hooks.health = [&svc, &metrics, adm = admission.get(),
                        store_configured,
                        high_water = admission_options.high_water] {
            telemetry::HealthStatus h;
            h.store_configured = store_configured;
            h.store_ok = svc.store() != nullptr;
            h.shed_active = adm != nullptr && adm->shedding();
            h.queue_depth =
                metrics.gauge("service.queue_depth").value();
            h.shed_high_water = high_water;
            h.ready =
                !h.shed_active && (!store_configured || h.store_ok);
            return h;
        };
        hooks.spans_json = [] {
            std::ostringstream oss;
            trace::Tracer::instance().writeChromeJson(oss);
            return oss.str();
        };
        try {
            admin = std::make_unique<telemetry::AdminServer>(
                std::move(hooks), static_cast<uint16_t>(admin_port));
        } catch (const UovError &e) {
            std::cerr << "uovd: " << e.what() << "\n";
            return 2;
        }
        std::cerr << "uovd: admin plane on 127.0.0.1:"
                  << admin->port() << "\n";
        if (!admin_port_file.empty()) {
            std::ofstream pf(admin_port_file);
            if (!pf) {
                std::cerr << "uovd: cannot open admin port file '"
                          << admin_port_file << "'\n";
                return 2;
            }
            pf << admin->port() << "\n";
        }
    }

    std::vector<std::string> responses;
    try {
        responses = runBatch(svc, requests, pool, admission.get(),
                             plane_armed ? &plane : nullptr);
    } catch (const UovError &e) {
        std::cerr << "uovd: " << e.what() << "\n";
        return 2;
    }

    if (!trace_path.empty()) {
        // Disabling before export also tells a UOV_TRACE env session
        // (support/trace static teardown) that this trace was already
        // written; workers are idle once runBatch returned.
        trace::Tracer &tracer = trace::Tracer::instance();
        tracer.disable();
        std::string trace_error;
        if (!tracer.exportToFile(trace_path, &trace_error)) {
            std::cerr << "uovd: " << trace_error << "\n";
            return 2;
        }
        tracer.summaryTable().print(std::cerr);
    }

    std::ofstream out_file;
    std::ostream *out = &std::cout;
    if (!output_path.empty() && output_path != "-") {
        out_file.open(output_path);
        if (!out_file) {
            std::cerr << "uovd: cannot open output '" << output_path
                      << "'\n";
            return 2;
        }
        out = &out_file;
    }
    size_t error_lines = 0;
    for (const auto &line : responses) {
        *out << line << "\n";
        if (line.rfind("error ", 0) == 0)
            ++error_lines;
    }
    out->flush();

    // --admin-hold: the batch is answered and flushed; keep the admin
    // plane up so scrapers and dashboards can inspect the run, until
    // a GET /quitquitquit lets the process exit.
    if (admin != nullptr && admin_hold) {
        std::cerr << "uovd: holding; GET /quitquitquit on the admin "
                     "port to exit\n";
        admin->waitQuit();
    }

    if (dump_metrics)
        metrics.table().print(std::cerr);
    if (!metrics_json_path.empty()) {
        if (metrics_json_path == "-") {
            std::cerr << metrics.json() << "\n";
        } else {
            std::ofstream mf(metrics_json_path);
            if (!mf) {
                std::cerr << "uovd: cannot open metrics output '"
                          << metrics_json_path << "'\n";
                return 2;
            }
            mf << metrics.json() << "\n";
        }
    }
    // Partial failure is success: only an all-error batch (every
    // request drew an error line) exits nonzero.
    bool all_errored = !responses.empty() &&
                       error_lines == responses.size();
    return all_errored ? 1 : 0;
}
