/**
 * @file
 * Exact rational arithmetic on int64 numerator/denominator.
 *
 * Used for polyhedron vertex enumeration and projection widths, where
 * intersections of integer constraint planes land on rational points.
 */

#ifndef UOV_GEOMETRY_RATIONAL_H
#define UOV_GEOMETRY_RATIONAL_H

#include <cstdint>
#include <ostream>
#include <string>

namespace uov {

/** Exact rational number; always stored normalized with positive den. */
class Rational
{
  public:
    Rational() : _num(0), _den(1) {}
    Rational(int64_t n) : _num(n), _den(1) {} // NOLINT: implicit by design
    Rational(int64_t n, int64_t d);

    int64_t num() const { return _num; }
    int64_t den() const { return _den; }

    Rational operator+(const Rational &o) const;
    Rational operator-(const Rational &o) const;
    Rational operator*(const Rational &o) const;
    Rational operator/(const Rational &o) const;
    Rational operator-() const;

    bool operator==(const Rational &o) const
    {
        return _num == o._num && _den == o._den;
    }
    bool operator!=(const Rational &o) const { return !(*this == o); }
    bool operator<(const Rational &o) const;
    bool operator<=(const Rational &o) const { return !(o < *this); }
    bool operator>(const Rational &o) const { return o < *this; }
    bool operator>=(const Rational &o) const { return !(*this < o); }

    bool isInteger() const { return _den == 1; }

    /** Largest integer <= value. */
    int64_t floor() const;
    /** Smallest integer >= value. */
    int64_t ceil() const;

    double toDouble() const
    {
        return static_cast<double>(_num) / static_cast<double>(_den);
    }

    std::string str() const;

  private:
    void normalize();

    int64_t _num;
    int64_t _den;
};

std::ostream &operator<<(std::ostream &os, const Rational &r);

} // namespace uov

#endif // UOV_GEOMETRY_RATIONAL_H
