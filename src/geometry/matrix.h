/**
 * @file
 * IMatrix: a small exact integer matrix.
 *
 * Sized for loop-nest dimensionalities (d <= ~6), not for numerics:
 * determinants use the Bareiss fraction-free algorithm, and inverses
 * are only provided for unimodular matrices (via the adjugate).
 */

#ifndef UOV_GEOMETRY_MATRIX_H
#define UOV_GEOMETRY_MATRIX_H

#include <cstdint>
#include <ostream>
#include <vector>

#include "geometry/ivec.h"

namespace uov {

/** Dense integer matrix with checked arithmetic. */
class IMatrix
{
  public:
    IMatrix() : _rows(0), _cols(0) {}

    /** Zero matrix of shape rows x cols. */
    IMatrix(size_t rows, size_t cols);

    /** From a row-major list of rows. */
    explicit IMatrix(std::vector<std::vector<int64_t>> rows);

    static IMatrix identity(size_t n);

    size_t rows() const { return _rows; }
    size_t cols() const { return _cols; }

    int64_t operator()(size_t r, size_t c) const;
    int64_t &operator()(size_t r, size_t c);

    IVec row(size_t r) const;
    IVec col(size_t c) const;

    IMatrix operator*(const IMatrix &o) const;
    IVec operator*(const IVec &v) const;
    IMatrix operator+(const IMatrix &o) const;
    IMatrix operator-(const IMatrix &o) const;
    bool operator==(const IMatrix &o) const;

    IMatrix transposed() const;

    /** Exact determinant (Bareiss). @pre square */
    int64_t determinant() const;

    /** True iff |det| == 1. @pre square */
    bool isUnimodular() const;

    /**
     * Exact inverse of a unimodular matrix (integer adjugate / det).
     * @pre isUnimodular()
     */
    IMatrix inverseUnimodular() const;

    /** Elementary row op: row[r] += k * row[s]. @pre r != s */
    void addRowMultiple(size_t r, size_t s, int64_t k);

    /** Elementary row op: swap rows. */
    void swapRows(size_t r, size_t s);

    std::string str() const;

  private:
    size_t _rows;
    size_t _cols;
    std::vector<int64_t> _data; // row-major

    size_t idx(size_t r, size_t c) const { return r * _cols + c; }
};

std::ostream &operator<<(std::ostream &os, const IMatrix &m);

} // namespace uov

#endif // UOV_GEOMETRY_MATRIX_H
