/**
 * @file
 * End-to-end compiler-pipeline walkthrough on a time-stepped stencil:
 *
 *   loop nest (IR)  ->  value-based dependence analysis  ->  region
 *   analysis  ->  UOV search  ->  storage mapping  ->  legal-schedule
 *   construction (skewed tiling)  ->  verified execution under many
 *   schedules  ->  wall-clock comparison of the kernel variants.
 *
 * This is the full workflow a compiler would run, exercised through
 * the library's public API.
 */

#include <chrono>
#include <iostream>
#include <memory>

#include "analysis/pipeline.h"
#include "kernels/stencil5.h"
#include "schedule/executor.h"
#include "schedule/legality.h"
#include "support/table.h"

using namespace uov;

int
main()
{
    std::cout << "=== 1. The program ===\n";
    int64_t t_steps = 24, len = 96;
    LoopNest nest = nests::fivePointStencil(t_steps, len);
    std::cout << nest.str() << "\n"
              << "B[t,i] = w.B[t-1, i-2..i+2]\n\n";

    std::cout << "=== 2. Analysis and storage planning ===\n";
    MappingPlan plan = planStorageMapping(nest, 0);
    std::cout << plan.str() << "\n\n";

    std::cout << "=== 3. Scheduling ===\n";
    Stencil stencil = plan.stencil;
    std::cout << "rectangular tiling legal as-is? "
              << (tilingLegal(IMatrix::identity(2), stencil) ? "yes"
                                                             : "no")
              << "\n";
    IMatrix skew = skewToNonNegative(stencil);
    std::cout << "skew transform " << skew.str()
              << " -> tiling legal? "
              << (tilingLegal(skew, stencil) ? "yes" : "no") << "\n\n";

    std::cout << "=== 4. Verified execution under many schedules ===\n";
    StencilComputation comp(stencil);
    IVec lo{0, 0}, hi{t_steps, len - 1};

    std::vector<std::unique_ptr<Schedule>> schedules;
    schedules.push_back(
        std::make_unique<LexSchedule>(LexSchedule::identity(2)));
    schedules.push_back(std::make_unique<TiledSchedule>(
        TiledSchedule({8, 32}, skew, "skew-tile")));
    schedules.push_back(
        std::make_unique<WavefrontSchedule>(IVec{3, 1}));
    schedules.push_back(
        std::make_unique<RandomTopoSchedule>(stencil, 2026));

    Table t("OV-mapped execution, UOV " + plan.search.best_uov.str());
    t.header({"schedule", "points", "mismatches", "clobbers",
              "verdict"});
    bool all_ok = true;
    for (const auto &s : schedules) {
        ExecutionResult r = runWithOvStorage(comp, *s, lo, hi,
                                             plan.search.best_uov);
        bool ok = r.correct() && r.clobbers == 0;
        all_ok = all_ok && ok;
        t.addRow()
            .cell(r.schedule_name)
            .cell(r.points)
            .cell(r.mismatches)
            .cell(r.clobbers)
            .cell(ok ? "correct" : "BROKEN");
    }
    t.print(std::cout);
    std::cout << "\nnegative control: a too-short OV (1,0) under "
                 "tiling:\n";
    ExecutionResult bad = runWithOvStorage(
        comp, *schedules[1], lo, hi, IVec{1, 0});
    std::cout << "  mismatches=" << bad.mismatches
              << " clobbers=" << bad.clobbers
              << (bad.correct() ? "  (unexpectedly fine!)"
                                : "  -> storage too aggressive, as "
                                  "predicted") << "\n\n";

    std::cout << "=== 5. Wall-clock kernels ===\n";
    Stencil5Config cfg;
    cfg.length = 1 << 20;
    cfg.steps = 8;
    cfg.tile_t = 8;
    cfg.tile_s = 2048;
    Table w("Host timing, L=2^20, T=8");
    w.header({"variant", "ms/run", "temp storage (floats)"});
    for (Stencil5Variant v : allStencil5Variants()) {
        auto start = std::chrono::steady_clock::now();
        VirtualArena arena;
        NativeMem mem;
        volatile double sink = runStencil5(v, cfg, mem, arena);
        (void)sink;
        auto stop = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        w.addRow()
            .cell(stencil5VariantName(v))
            .cell(ms, 1)
            .cell(formatCount(stencil5TemporaryStorage(v, cfg.length,
                                                       cfg.steps)));
    }
    w.print(std::cout);

    return all_ok && !bad.correct() ? 0 : 1;
}
