#include "fuzz/workload.h"

#include <sstream>

#include "fuzz/oracles.h"
#include "support/rng.h"

namespace uov {
namespace fuzz {

std::vector<service::Request>
makeWorkload(const WorkloadOptions &opt)
{
    std::vector<service::Request> pool;
    SplitMix64 rng(opt.seed);
    while (pool.size() < opt.distinct) {
        FuzzCase c = makeCase(rng.next());
        if (!c.valid())
            continue;
        service::Request r;
        r.deps = c.deps;
        r.deadline_ms = opt.deadline_ms;
        if (pool.size() % 2 == 0) {
            r.objective = SearchObjective::BoundedStorage;
            r.isg_lo = c.lo;
            r.isg_hi = c.hi;
        } else {
            r.objective = SearchObjective::ShortestVector;
        }
        pool.push_back(std::move(r));
    }

    std::vector<service::Request> out;
    out.reserve(opt.requests);
    for (size_t i = 0; i < opt.requests; ++i) {
        service::Request r = pool[rng.nextBelow(pool.size())];
        r.index = i + 1;
        out.push_back(std::move(r));
    }
    return out;
}

std::string
renderRequest(const service::Request &request)
{
    std::ostringstream oss;
    oss << "query "
        << (request.objective == SearchObjective::BoundedStorage
                ? "storage"
                : "shortest");
    if (request.deadline_ms != -1)
        oss << " deadline_ms " << request.deadline_ms;
    if (request.isg_lo) {
        oss << " bounds";
        for (size_t k = 0; k < request.isg_lo->dim(); ++k)
            oss << " " << (*request.isg_lo)[k] << ".."
                << (*request.isg_hi)[k];
    }
    oss << " deps";
    for (const IVec &v : request.deps) {
        oss << " [";
        for (size_t k = 0; k < v.dim(); ++k)
            oss << (k ? "," : "") << v[k];
        oss << "]";
    }
    return oss.str();
}

} // namespace fuzz
} // namespace uov
