/**
 * @file
 * IVec: an exact integer vector of small, arbitrary dimension.
 *
 * The workhorse type of the library: dependence distances, occupancy
 * vectors, mapping vectors and iteration points are all IVecs.  All
 * arithmetic is overflow-checked.
 *
 * Representation: coordinates live inline (no heap) up to
 * kInlineCapacity = 4 dimensions -- covering every stencil in the
 * paper, the corpus and the benches -- and spill to one heap array
 * beyond that.  Hot loops (search, cone membership) therefore add,
 * hash and compare IVecs without touching the allocator.  Code that
 * needs raw coordinate access uses data()/dim(); the span stays valid
 * until the vector is mutated in dimension or destroyed.
 */

#ifndef UOV_GEOMETRY_IVEC_H
#define UOV_GEOMETRY_IVEC_H

#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace uov {

/** Exact integer vector in Z^d. */
class IVec
{
  public:
    /** Dimensions held inline without heap allocation. */
    static constexpr size_t kInlineCapacity = 4;

    /** Zero-dimensional vector (useful as a placeholder). */
    IVec() = default;

    /** Zero vector of dimension @p dim. */
    explicit IVec(size_t dim) : _size(dim)
    {
        int64_t *p = alloc(dim);
        for (size_t i = 0; i < dim; ++i)
            p[i] = 0;
    }

    /** From explicit coordinates: IVec{1, -2}. */
    IVec(std::initializer_list<int64_t> coords)
        : IVec(coords.begin(), coords.size())
    {
    }

    /** From a coordinate vector. */
    explicit IVec(const std::vector<int64_t> &coords)
        : IVec(coords.data(), coords.size())
    {
    }

    /** From @p n packed coordinates (flat-map / arena interop). */
    IVec(const int64_t *coords, size_t n) : _size(n)
    {
        int64_t *p = alloc(n);
        if (n)
            std::memcpy(p, coords, n * sizeof(int64_t));
    }

    IVec(const IVec &o) : IVec(o.data(), o._size) {}

    IVec(IVec &&o) noexcept : _size(o._size)
    {
        if (isInline())
            std::memcpy(_buf, o._buf, sizeof(_buf));
        else
            _heap = o._heap;
        o._size = 0;
    }

    IVec &
    operator=(const IVec &o)
    {
        if (this == &o)
            return *this;
        assign(o.data(), o._size);
        return *this;
    }

    IVec &
    operator=(IVec &&o) noexcept
    {
        if (this == &o)
            return *this;
        release();
        _size = o._size;
        if (isInline())
            std::memcpy(_buf, o._buf, sizeof(_buf));
        else
            _heap = o._heap;
        o._size = 0;
        return *this;
    }

    ~IVec() { release(); }

    size_t dim() const { return _size; }

    int64_t operator[](size_t i) const;
    int64_t &operator[](size_t i);

    /** Raw coordinates; valid until resize/destruction. */
    const int64_t *data() const { return isInline() ? _buf : _heap; }
    int64_t *data() { return isInline() ? _buf : _heap; }

    /** Coordinates as a std::vector (materialized copy). */
    std::vector<int64_t>
    coords() const
    {
        return std::vector<int64_t>(data(), data() + _size);
    }

    /** Component-wise arithmetic; dimensions must match. */
    IVec operator+(const IVec &o) const;
    IVec operator-(const IVec &o) const;
    IVec operator-() const;
    IVec operator*(int64_t s) const;
    IVec &operator+=(const IVec &o);
    IVec &operator-=(const IVec &o);

    bool
    operator==(const IVec &o) const
    {
        return _size == o._size &&
               (_size == 0 ||
                std::memcmp(data(), o.data(),
                            _size * sizeof(int64_t)) == 0);
    }
    bool operator!=(const IVec &o) const { return !(*this == o); }

    /** Lexicographic order (for use as map keys and schedule order). */
    bool operator<(const IVec &o) const;

    /** True iff every coordinate is zero. */
    bool isZero() const;

    /**
     * True iff the first nonzero coordinate is positive.
     * A legal dependence distance vector is lexicographically positive.
     */
    bool isLexPositive() const;

    /** Dot product. @pre dimensions match */
    int64_t dot(const IVec &o) const;

    /** Squared Euclidean length (exact). */
    int64_t normSquared() const;

    /** Sum of |coordinate| (L1 norm, exact). */
    int64_t norm1() const;

    /** max |coordinate| (Linf norm, exact). */
    int64_t normInf() const;

    /**
     * Content: gcd of all coordinates (non-negative); 0 for the zero
     * vector.  A vector is "prime" (primitive) iff content() == 1.
     */
    int64_t content() const;

    /** True iff content() == 1 (the paper's "prime" OV). */
    bool isPrime() const { return content() == 1; }

    /** Divide every coordinate by @p s. @pre s divides every coordinate */
    IVec dividedBy(int64_t s) const;

    /** "(a, b, c)" rendering. */
    std::string str() const;

    /** Stable hash for unordered containers. */
    size_t hash() const;

  private:
    bool isInline() const { return _size <= kInlineCapacity; }

    /** Set _size-dependent storage; returns the coordinate array. */
    int64_t *
    alloc(size_t n)
    {
        _size = n;
        if (n <= kInlineCapacity)
            return _buf;
        _heap = new int64_t[n];
        return _heap;
    }

    void
    release()
    {
        if (!isInline())
            delete[] _heap;
    }

    void
    assign(const int64_t *coords, size_t n)
    {
        if (n == _size) {
            if (n)
                std::memmove(data(), coords, n * sizeof(int64_t));
            return;
        }
        release();
        int64_t *p = alloc(n);
        if (n)
            std::memcpy(p, coords, n * sizeof(int64_t));
    }

    size_t _size = 0;
    union
    {
        int64_t _buf[kInlineCapacity];
        int64_t *_heap;
    };
};

std::ostream &operator<<(std::ostream &os, const IVec &v);

/** Hash functor for std::unordered_map<IVec, ...>. */
struct IVecHash
{
    size_t operator()(const IVec &v) const { return v.hash(); }
};

} // namespace uov

#endif // UOV_GEOMETRY_IVEC_H
