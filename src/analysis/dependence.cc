#include "analysis/dependence.h"

#include <sstream>

#include "support/error.h"

namespace uov {

std::string
ReadDependence::str() const
{
    std::ostringstream oss;
    oss << "read#" << read_index << " distance " << distance << " ("
        << (kind == ReadKind::LoopCarriedFlow ? "flow" : "import") << ")";
    return oss.str();
}

std::vector<IVec>
DependenceInfo::flowDistances() const
{
    std::vector<IVec> out;
    for (const auto &r : reads)
        if (r.kind == ReadKind::LoopCarriedFlow)
            out.push_back(r.distance);
    return out;
}

DependenceInfo
analyzeDependences(const LoopNest &nest, size_t stmt_index)
{
    const Statement &stmt = nest.statement(stmt_index);
    const Access &write = stmt.write;

    UOV_REQUIRE(write.coef.rows() == write.coef.cols(),
                "write access of " << write.array
                    << " is not a square map; value-based distances "
                       "require an invertible (unimodular) write");
    UOV_REQUIRE(write.coef.isUnimodular(),
                "write access of " << write.array
                    << " has non-unimodular linear part; elements would "
                       "be written zero or multiple times");

    DependenceInfo info;
    info.statement_index = stmt_index;

    for (size_t i = 0; i < stmt.reads.size(); ++i) {
        const Access &read = stmt.reads[i];
        if (read.array != write.array)
            continue; // no dependence on this statement's values

        // Same element: W*(q - d) + ow == R*q + or.  The regular
        // stencil precondition is W == R, giving W*d = ow - or and a
        // constant d = W^{-1}(ow - or).
        UOV_REQUIRE(read.coef == write.coef,
                    "read " << read.str() << " does not share the "
                            << "write's linear part; the dependence "
                               "distance is not constant (not a regular "
                               "stencil)");
        IVec d = write.coef.inverseUnimodular() *
                 (write.offset - read.offset);

        ReadDependence rd;
        rd.read_index = i;
        rd.distance = d;
        rd.kind = d.isLexPositive() ? ReadKind::LoopCarriedFlow
                                    : ReadKind::Import;
        info.reads.push_back(std::move(rd));
    }
    return info;
}

Stencil
extractStencil(const LoopNest &nest, size_t stmt_index)
{
    DependenceInfo info = analyzeDependences(nest, stmt_index);
    auto flows = info.flowDistances();
    UOV_REQUIRE(!flows.empty(),
                "statement " << stmt_index << " of " << nest.name()
                             << " has no loop-carried flow dependences; "
                                "there is nothing to map");
    return Stencil(std::move(flows));
}

} // namespace uov
