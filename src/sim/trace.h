/**
 * @file
 * Address-trace recording and replay.
 *
 * TraceRecorder is a memory policy (like SimMem) that captures the
 * exact access stream a kernel produces; traces can be replayed
 * through any MemorySystem, diffed, or summarized.  This is the
 * glue for trace-driven experiments: record once, replay across all
 * three machine models without re-running the kernel.
 */

#ifndef UOV_SIM_TRACE_H
#define UOV_SIM_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/machine.h"
#include "sim/memory_policy.h"

namespace uov {

/** One recorded event. */
struct TraceEvent
{
    enum class Kind : uint8_t { Load, Store, Branch };
    Kind kind;
    uint64_t addr; ///< 0 for branches

    bool operator==(const TraceEvent &o) const
    {
        return kind == o.kind && addr == o.addr;
    }
};

/** A recorded access stream. */
class Trace
{
  public:
    void
    record(TraceEvent::Kind kind, uint64_t addr)
    {
        _events.push_back(TraceEvent{kind, addr});
    }

    size_t size() const { return _events.size(); }
    const std::vector<TraceEvent> &events() const { return _events; }

    uint64_t loadCount() const;
    uint64_t storeCount() const;
    uint64_t branchCount() const;

    /** Distinct bytes touched (footprint), line-granular. */
    uint64_t footprintBytes(int64_t line_bytes = 64) const;

    /** Replay through a memory system; returns total cycles. */
    double replay(MemorySystem &ms) const;

    /** Compact text summary. */
    std::string summary() const;

  private:
    std::vector<TraceEvent> _events;
};

/** Memory policy that records while computing real results. */
struct TracingMem
{
    Trace *trace;
    double compute_cycles = 0; ///< accumulated kernel compute hints

    template <typename T>
    T
    load(const SimBuffer<T> &b, size_t i)
    {
        trace->record(TraceEvent::Kind::Load, b.addr(i));
        return b.data()[i];
    }

    template <typename T>
    void
    store(SimBuffer<T> &b, size_t i, T v)
    {
        trace->record(TraceEvent::Kind::Store, b.addr(i));
        b.data()[i] = v;
    }

    void branch() { trace->record(TraceEvent::Kind::Branch, 0); }
    void compute(double c) { compute_cycles += c; }
};

} // namespace uov

#endif // UOV_SIM_TRACE_H
