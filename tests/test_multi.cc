/**
 * @file
 * Tests for multi-statement storage planning, the generalized UOV
 * oracle, and shared UOVs across loops (the paper's Section 7 future
 * work, implemented).
 */

#include <gtest/gtest.h>

#include "analysis/multi.h"
#include "core/uov.h"
#include "support/error.h"

namespace uov {
namespace {

/** The PSM DP as a two-statement nest: gap chain E, then score D. */
LoopNest
psmTwoStatementNest(int64_t n0, int64_t n1)
{
    LoopNest nest("psm2", IVec{1, 1}, IVec{n0, n1});
    Statement e;
    e.name = "E";
    e.write = uniformAccess("E", IVec{0, 0});
    e.reads = {uniformAccess("E", IVec{0, -1}),
               uniformAccess("D", IVec{0, -1})};
    nest.addStatement(e);
    Statement d;
    d.name = "D";
    d.write = uniformAccess("D", IVec{0, 0});
    d.reads = {uniformAccess("D", IVec{-1, -1}),
               uniformAccess("D", IVec{-1, 0}),
               uniformAccess("E", IVec{0, 0})}; // same-iteration use
    nest.addStatement(d);
    return nest;
}

TEST(GeneralOracle, ReducesToClassicWithConeConsumers)
{
    Stencil s = stencils::fivePoint();
    GeneralUovOracle general(s, s.deps());
    UovOracle classic(s);
    for (int64_t t = 0; t <= 3; ++t) {
        for (int64_t j = -4; j <= 4; ++j) {
            IVec w{t, j};
            if (w.isZero())
                continue;
            EXPECT_EQ(general.isUov(w), classic.isUov(w)) << w.str();
        }
    }
    EXPECT_EQ(general.searchShortest(), (IVec{2, 0}));
}

TEST(GeneralOracle, ZeroConsumerOnlyRequiresConeMembership)
{
    // Array consumed only within its own iteration: any nonzero cone
    // member is a safe OV.
    Stencil cone = stencils::simpleExample();
    GeneralUovOracle oracle(cone, {IVec{0, 0}});
    EXPECT_TRUE(oracle.isUov(IVec{1, 0}));
    EXPECT_TRUE(oracle.isUov(IVec{0, 1}));
    EXPECT_FALSE(oracle.isUov(IVec{0, 0}));
    EXPECT_FALSE(oracle.isUov(IVec{-1, 0}));
    // Shortest is a unit vector.
    EXPECT_EQ(oracle.searchShortest().normSquared(), 1);
}

TEST(GeneralOracle, SubsetConsumersNeedShorterVectors)
{
    // Cone {(1,0),(0,1),(1,1)}; array consumed only via (1,1):
    // w = (1,1) works, and so does anything with w-(1,1) in cone.
    Stencil cone = stencils::simpleExample();
    GeneralUovOracle oracle(cone, {IVec{1, 1}});
    EXPECT_TRUE(oracle.isUov(IVec{1, 1}));
    EXPECT_FALSE(oracle.isUov(IVec{1, 0})); // (0,-1) not in cone
    EXPECT_TRUE(oracle.isUov(IVec{2, 1}));  // (1,0) in cone
}

TEST(GeneralOracle, RejectsForeignConsumers)
{
    Stencil cone({IVec{1, 0}});
    EXPECT_THROW(GeneralUovOracle(cone, {IVec{0, 1}}), UovUserError);
    EXPECT_THROW(GeneralUovOracle(cone, {}), UovUserError);
}

TEST(MultiPlan, PsmTwoStatementConsumers)
{
    LoopNest nest = psmTwoStatementNest(16, 16);
    auto d_cons = consumerDistances(nest, "D");
    auto e_cons = consumerDistances(nest, "E");

    // D consumed at (1,1), (1,0) by itself and (0,1) by E.
    EXPECT_EQ(d_cons.size(), 3u);
    EXPECT_NE(std::find(d_cons.begin(), d_cons.end(), IVec{0, 1}),
              d_cons.end());
    // E consumed at (0,1) by itself and same-iteration (0,0) by D
    // (D is textually later, so the zero distance is genuine flow).
    ASSERT_EQ(e_cons.size(), 2u);
    EXPECT_NE(std::find(e_cons.begin(), e_cons.end(), IVec{0, 0}),
              e_cons.end());
}

TEST(MultiPlan, SameIterationReadBeforeWriteIsImport)
{
    // A statement reading an array written by a LATER statement at
    // distance zero reads the old value: import, not consumer.
    LoopNest nest("n", IVec{1, 1}, IVec{4, 4});
    Statement first;
    first.name = "uses_B_before_write";
    first.write = uniformAccess("A", IVec{0, 0});
    first.reads = {uniformAccess("B", IVec{0, 0}),
                   uniformAccess("A", IVec{-1, 0})};
    nest.addStatement(first);
    Statement second;
    second.name = "writes_B";
    second.write = uniformAccess("B", IVec{0, 0});
    second.reads = {uniformAccess("B", IVec{0, -1})};
    nest.addStatement(second);

    auto b_cons = consumerDistances(nest, "B");
    ASSERT_EQ(b_cons.size(), 1u);
    EXPECT_EQ(b_cons[0], (IVec{0, 1}));
}

TEST(MultiPlan, PsmPlanMatchesOrBeatsPaperStorage)
{
    int64_t n = 64;
    LoopNest nest = psmTwoStatementNest(n, n);
    MultiNestPlan plan = planMultiStatement(nest);

    ASSERT_EQ(plan.arrays.size(), 2u);
    // Schedule cone is the classic PSM stencil.
    EXPECT_EQ(plan.schedule_cone, stencils::proteinMatching());

    // D needs the anti-diagonal: UOV (1,1), 2n-1 cells over [1,n]^2.
    const auto &e_plan = plan.arrays[0];
    const auto &d_plan = plan.arrays[1];
    ASSERT_EQ(d_plan.array, "D");
    EXPECT_EQ(d_plan.uov, (IVec{1, 1}));
    EXPECT_EQ(d_plan.mapping.cellCount(), 2 * n - 1);

    // E's only cross-iteration consumer is (0,1): the exact analysis
    // proves UOV (0,1) suffices -- one cell per row, n cells --
    // strictly better than the paper's conservative 2(n0+n1+1)
    // (which our hand kernels use to match Table 2).
    ASSERT_EQ(e_plan.array, "E");
    EXPECT_EQ(e_plan.uov, (IVec{0, 1}));
    EXPECT_EQ(e_plan.mapping.cellCount(), n);

    EXPECT_EQ(plan.totalCells(), (2 * n - 1) + n);
    EXPECT_LE(plan.totalCells(),
              2 * (2 * n + 1)); // never worse than Table 2
    EXPECT_FALSE(plan.str().empty());
}

TEST(MultiPlan, EUsesShorterOvThanDWhenConsumersAllow)
{
    // Give E only the same-iteration consumer: its OV can be a unit
    // vector while D still needs (1,1).
    LoopNest nest("n", IVec{1, 1}, IVec{8, 8});
    Statement e;
    e.name = "E";
    e.write = uniformAccess("E", IVec{0, 0});
    e.reads = {uniformAccess("D", IVec{0, -1}),
               uniformAccess("D", IVec{-1, 0})};
    nest.addStatement(e);
    Statement d;
    d.name = "D";
    d.write = uniformAccess("D", IVec{0, 0});
    d.reads = {uniformAccess("E", IVec{0, 0}),
               uniformAccess("D", IVec{-1, -1})};
    nest.addStatement(d);

    MultiNestPlan plan = planMultiStatement(nest);
    const auto &e_plan = plan.arrays[0];
    const auto &d_plan = plan.arrays[1];
    EXPECT_EQ(e_plan.array, "E");
    EXPECT_EQ(e_plan.uov.normSquared(), 1);
    EXPECT_GT(d_plan.uov.normSquared(), 1);
    EXPECT_LT(e_plan.mapping.cellCount(), d_plan.mapping.cellCount());
}

TEST(MultiPlan, RejectsDeadArrays)
{
    LoopNest nest("n", IVec{1, 1}, IVec{4, 4});
    Statement s;
    s.name = "w";
    s.write = uniformAccess("A", IVec{0, 0});
    s.reads = {uniformAccess("A", IVec{-1, 0})};
    nest.addStatement(s);
    Statement dead;
    dead.name = "dead";
    dead.write = uniformAccess("Z", IVec{0, 0});
    dead.reads = {uniformAccess("A", IVec{-1, -1})};
    nest.addStatement(dead);
    EXPECT_THROW(planMultiStatement(nest), UovUserError);
}

TEST(SharedUov, ExistsForCompatibleStencils)
{
    // Two loops over the same array: simple example and its (1,1)
    // sub-stencil share the anti-diagonal.
    auto shared = findSharedUov(
        {stencils::simpleExample(), Stencil({IVec{1, 1}})});
    ASSERT_TRUE(shared.has_value());
    EXPECT_EQ(*shared, (IVec{1, 1}));
    UovOracle a(stencils::simpleExample());
    UovOracle b(Stencil({IVec{1, 1}}));
    EXPECT_TRUE(a.isUov(*shared));
    EXPECT_TRUE(b.isUov(*shared));
}

TEST(SharedUov, FivePointAndItsCoarsening)
{
    auto shared = findSharedUov(
        {stencils::fivePoint(),
         Stencil({IVec{1, -1}, IVec{1, 0}, IVec{1, 1}})});
    ASSERT_TRUE(shared.has_value());
    EXPECT_EQ(*shared, (IVec{2, 0}));
}

TEST(SharedUov, MayNotExist)
{
    // UOV({(1,0),(0,1),(1,1)}) needs both coordinates reachable;
    // UOV({(2,0)}) lives on the lattice line (2k, 0): disjoint.
    auto shared = findSharedUov(
        {stencils::simpleExample(), Stencil({IVec{2, 0}})});
    EXPECT_FALSE(shared.has_value());
}

TEST(SharedUov, SingleStencilReducesToShortest)
{
    auto shared = findSharedUov({stencils::fivePoint()});
    ASSERT_TRUE(shared.has_value());
    EXPECT_EQ(*shared, (IVec{2, 0}));
}

} // namespace
} // namespace uov
