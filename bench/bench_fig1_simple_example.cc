/**
 * @file
 * Reproduces Figure 1: the simple example's three code versions, their
 * storage requirements, their tilability, and (beyond the figure) a
 * runtime check that all three produce identical results.
 */

#include "bench_common.h"

#include "analysis/pipeline.h"
#include "core/uov.h"
#include "kernels/simple.h"
#include "schedule/legality.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 1 (simple example: storage vs schedule "
                  "freedom)");

    const int64_t n = opt.quick ? 64 : 512;
    const int64_t m = opt.quick ? 48 : 384;

    // The compiler pipeline derives everything from the loop nest.
    PlanOptions popts;
    popts.live_out = live_out::hyperplane(0, n);
    MappingPlan plan = planStorageMapping(nests::simpleExample(n, m), 0,
                                          popts);

    std::cout << "loop nest: for i=1.." << n << ", j=1.." << m
              << ": A[i,j] = f(A[i-1,j], A[i,j-1], A[i-1,j-1])\n";
    std::cout << "derived stencil: " << plan.stencil.str()
              << "  ->  UOV " << plan.search.best_uov << "\n\n";

    Table t("Figure 1: storage requirements (n=" + std::to_string(n) +
            ", m=" + std::to_string(m) + ")");
    t.header({"version", "storage formula", "cells", "tilable",
              "result"});

    VirtualArena arena;
    NativeMem mem;
    int64_t ref = runSimple(SimpleVariant::Natural, n, m, mem, arena);

    struct Row
    {
        SimpleVariant v;
        const char *formula;
        bool tilable;
    };
    const Row rows[] = {
        {SimpleVariant::Natural, "nm", true},
        {SimpleVariant::OvMapped, "n+m+1", true},
        {SimpleVariant::StorageOptimized, "m+2", false},
    };
    for (const Row &r : rows) {
        int64_t result = runSimple(r.v, n, m, mem, arena);
        t.addRow()
            .cell(simpleVariantName(r.v))
            .cell(r.formula)
            .cell(simpleStorage(r.v, n, m))
            .cell(r.tilable ? "yes" : "no")
            .cell(result == ref ? "matches natural" : "MISMATCH");
    }
    bench::emit(t, opt);

    // Figure 1(b)'s mapping, derived rather than hard-coded.
    std::cout << "derived mapping: " << plan.mapping.str() << "\n";
    std::cout << "paper's mapping: SM(q) = (-1,1).q + n, " << n + m + 1
              << " cells (ISG including boundary inputs)\n\n";

    // Tilability claims, checked against the legality layer.
    bool ok =
        tilingLegal(IMatrix::identity(2), stencils::simpleExample());
    std::cout << "tiling of the value-dependence stencil is "
              << (ok ? "legal" : "ILLEGAL")
              << "; the storage-optimized version adds storage "
                 "dependences between all iterations and cannot be "
                 "tiled (Figure 1(c)).\n";
    return 0;
}
