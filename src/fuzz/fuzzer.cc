#include "fuzz/fuzzer.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "driver/nest_parser.h"
#include "support/error.h"

namespace uov {
namespace fuzz {

const char *
oracleName(OracleKind kind)
{
    switch (kind) {
      case OracleKind::Membership:
        return "membership";
      case OracleKind::Search:
        return "search";
      case OracleKind::Mapping:
        return "mapping";
      case OracleKind::Streaming:
        return "streaming";
      case OracleKind::Service:
        return "service";
      case OracleKind::Fault:
        return "fault";
      case OracleKind::Codegen:
        return "codegen";
      case OracleKind::Tune:
        return "tune";
      case OracleKind::Durability:
        return "durability";
    }
    UOV_UNREACHABLE("bad oracle kind");
}

std::optional<OracleKind>
parseOracleName(const std::string &name)
{
    for (OracleKind k :
         {OracleKind::Membership, OracleKind::Search,
          OracleKind::Mapping, OracleKind::Streaming,
          OracleKind::Service, OracleKind::Fault,
          OracleKind::Codegen, OracleKind::Tune,
          OracleKind::Durability}) {
        if (name == oracleName(k))
            return k;
    }
    return std::nullopt;
}

OracleVerdict
runOracle(OracleKind kind, const FuzzCase &c)
{
    try {
        switch (kind) {
          case OracleKind::Membership:
            return checkMembership(c);
          case OracleKind::Search:
            return checkSearch(c);
          case OracleKind::Mapping:
            return checkMapping(c);
          case OracleKind::Streaming:
            return checkStreaming(c.seed);
          case OracleKind::Service:
            return checkService(c);
          case OracleKind::Fault:
            return checkFault(c);
          case OracleKind::Codegen:
            return checkCodegen(c);
          case OracleKind::Tune:
            return checkTune(c);
          case OracleKind::Durability:
            return checkDurability(c);
        }
        UOV_UNREACHABLE("bad oracle kind");
    } catch (const UovError &e) {
        return std::string("oracle threw: ") + e.what();
    }
}

std::string
FuzzReport::str() const
{
    std::ostringstream oss;
    oss << cases << " cases (" << corpus_cases << " corpus), "
        << oracle_runs << " oracle runs, " << failures.size()
        << " discrepancies";
    return oss.str();
}

namespace {

/** The stencil-shaped oracles a corpus nest exercises. */
constexpr OracleKind kCorpusOracles[] = {
    OracleKind::Membership, OracleKind::Search, OracleKind::Mapping,
    OracleKind::Service, OracleKind::Codegen, OracleKind::Tune,
    OracleKind::Durability};

void
recordFailure(FuzzReport &report, const FuzzOptions &opt,
              OracleKind kind, const FuzzCase &c,
              const std::string &source, const std::string &detail)
{
    FuzzFailure f;
    f.oracle = oracleName(kind);
    f.case_seed = c.seed;
    f.source = source;
    f.detail = detail;
    f.shrunk = c;

    // Shrinking applies to stencil-shaped cases only: the streaming
    // oracle's input is its seed, which has no smaller form.
    if (opt.shrink && kind != OracleKind::Streaming && c.valid()) {
        f.shrunk = shrinkCase(
            c,
            [&](const FuzzCase &m) {
                return runOracle(kind, m).has_value();
            },
            &f.shrink_stats);
        // Re-run on the minimized case so the report shows the
        // discrepancy the repro actually produces.
        if (auto v = runOracle(kind, f.shrunk))
            f.detail = *v;
    }
    f.repro = reproString(f.shrunk, f.oracle, f.detail);

    if (opt.log)
        *opt.log << "FAIL [" << f.oracle << "] " << source << ": "
                 << f.detail << "\n"
                 << f.repro;
    report.failures.push_back(std::move(f));
}

} // namespace

FuzzReport
runFuzzer(const FuzzOptions &opt)
{
    FuzzReport report;

    // Corpus first: known-interesting inputs gate the random sweep,
    // so regressions on them surface immediately and deterministically
    // regardless of --seed.
    for (const auto &path : opt.corpus_files) {
        std::ifstream in(path);
        if (!in.good()) {
            recordFailure(report, opt, OracleKind::Membership,
                          FuzzCase{}, path, "cannot open corpus file");
            continue;
        }
        FuzzCase c;
        try {
            c = caseFromNest(parseNest(in));
        } catch (const UovError &e) {
            // A corpus nest the front end rejects is itself a
            // regression: these files are checked in as parseable.
            recordFailure(report, opt, OracleKind::Membership,
                          FuzzCase{}, path,
                          std::string("corpus nest rejected: ") +
                              e.what());
            continue;
        }
        ++report.cases;
        ++report.corpus_cases;
        for (OracleKind kind : kCorpusOracles) {
            if (opt.only && *opt.only != kind)
                continue;
            ++report.oracle_runs;
            if (auto v = runOracle(kind, c))
                recordFailure(report, opt, kind, c, path, *v);
        }
        if (opt.log)
            *opt.log << "corpus " << path << ": ok\n";
    }

    // Random sweep: case seeds come from their own SplitMix64 stream,
    // so case i is reproducible from the printed seed without
    // replaying cases 0..i-1.
    SplitMix64 seeds(opt.seed);
    for (uint64_t i = 0; i < opt.iters; ++i) {
        uint64_t case_seed = seeds.next();
        OracleKind kind =
            opt.only ? *opt.only
                     : static_cast<OracleKind>(i % kOracleKindCount);
        FuzzCase c = makeCase(case_seed, opt.gen);
        ++report.cases;
        ++report.oracle_runs;
        if (auto v = runOracle(kind, c))
            recordFailure(report, opt, kind, c, "random", *v);
        if (opt.log && (i + 1) % 100 == 0)
            *opt.log << "..." << (i + 1) << "/" << opt.iters << " ("
                     << report.failures.size() << " failures)\n";
    }
    return report;
}

} // namespace fuzz
} // namespace uov
