#include "analysis/region.h"

#include <sstream>
#include <unordered_set>

#include "analysis/dependence.h"
#include "support/error.h"

namespace uov {

std::string
RegionSummary::str() const
{
    std::ostringstream oss;
    oss << array << ": written=" << written << " imported=" << imported
        << " live_out=" << live_out << " temporary=" << temporary;
    return oss.str();
}

RegionSummary
analyzeRegions(const LoopNest &nest, size_t stmt_index,
               const LiveOutPredicate &live_out, int64_t max_scan)
{
    UOV_REQUIRE(nest.tripCount() <= max_scan,
                "region analysis scan over " << nest.tripCount()
                    << " iterations exceeds limit " << max_scan);
    const Statement &stmt = nest.statement(stmt_index);
    Polyhedron domain = nest.domain();

    // Producer distances for reads of the written array.
    DependenceInfo deps = analyzeDependences(nest, stmt_index);

    std::unordered_set<IVec, IVecHash> written;
    std::unordered_set<IVec, IVecHash> imported;

    for (const auto &q : domain.integerPoints(max_scan)) {
        written.insert(stmt.write.elementAt(q));
        for (const auto &rd : deps.reads) {
            const Access &read = stmt.reads[rd.read_index];
            if (rd.kind == ReadKind::Import) {
                // Never produced in-nest under the original schedule.
                imported.insert(read.elementAt(q));
                continue;
            }
            // Flow read: imported only when the producer iteration
            // falls outside the domain (boundary inputs).
            if (!domain.contains(q - rd.distance))
                imported.insert(read.elementAt(q));
        }
    }

    RegionSummary s;
    s.array = stmt.write.array;
    s.written = static_cast<int64_t>(written.size());
    s.imported = static_cast<int64_t>(imported.size());
    for (const auto &e : written)
        if (live_out(e))
            ++s.live_out;
    s.temporary = s.written - s.live_out;
    return s;
}

namespace live_out {

LiveOutPredicate
nothing()
{
    return [](const IVec &) { return false; };
}

LiveOutPredicate
everything()
{
    return [](const IVec &) { return true; };
}

LiveOutPredicate
hyperplane(size_t dim, int64_t value)
{
    return [dim, value](const IVec &e) { return e[dim] == value; };
}

} // namespace live_out

} // namespace uov
