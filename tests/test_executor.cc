/**
 * @file
 * Executor tests: the empirical proof of the paper's central claim.
 *
 * A UOV-mapped array must be correct under EVERY legal schedule; a
 * shorter, non-universal OV is correct only under schedules compatible
 * with it (Figure 1(c)'s storage-optimized code is the motivating
 * case).  These tests sweep the schedule family and assert exactly
 * that.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/uov.h"
#include "schedule/executor.h"
#include "schedule/legality.h"

namespace uov {
namespace {

/** The legal schedule family for a stencil over 2-D boxes. */
std::vector<std::unique_ptr<Schedule>>
legalSchedules2D(const Stencil &stencil)
{
    std::vector<std::unique_ptr<Schedule>> out;
    out.push_back(std::make_unique<LexSchedule>(LexSchedule::identity(2)));
    if (permutationLegal({1, 0}, stencil))
        out.push_back(std::make_unique<LexSchedule>(
            std::vector<size_t>{1, 0}));
    if (tilingLegal(IMatrix::identity(2), stencil)) {
        out.push_back(std::make_unique<TiledSchedule>(
            TiledSchedule::rectangular({3, 3})));
        out.push_back(std::make_unique<TiledSchedule>(
            TiledSchedule::rectangular({2, 5})));
    }
    // Skewed tiling (always constructible when time advances).
    bool time_advances = true;
    for (const auto &v : stencil.deps())
        if (v[0] <= 0)
            time_advances = false;
    if (time_advances) {
        IMatrix skew = skewToNonNegative(stencil);
        out.push_back(std::make_unique<TiledSchedule>(
            TiledSchedule({3, 4}, skew, "skew-tile")));
    }
    // A legal wavefront: h = (K, 1) with K large enough.
    int64_t k = 1 + stencil.maxAbsCoord();
    if (wavefrontLegal(IVec{k, 1}, stencil))
        out.push_back(std::make_unique<WavefrontSchedule>(IVec{k, 1}));
    // Two-level hierarchy and a 2-D affine time mapping.
    if (time_advances) {
        IMatrix skew = skewToNonNegative(stencil);
        out.push_back(std::make_unique<HierarchicalTiledSchedule>(
            std::vector<int64_t>{2, 3}, std::vector<int64_t>{2, 2},
            skew, "hier"));
    }
    {
        AffineSchedule affine({IVec{1, 0}, IVec{0, 1}});
        bool legal = true;
        for (const auto &v : stencil.deps()) {
            auto t = affine.timeOf(v);
            if (!(t > std::vector<int64_t>(t.size(), 0)))
                legal = false;
        }
        if (legal)
            out.push_back(std::make_unique<AffineSchedule>(
                std::vector<IVec>{IVec{1, 0}, IVec{0, 1}}));
    }
    for (uint64_t seed : {1u, 2u, 3u})
        out.push_back(std::make_unique<RandomTopoSchedule>(stencil, seed));
    return out;
}

TEST(Executor, ReferenceDeterministic)
{
    StencilComputation comp(stencils::simpleExample());
    auto a = computeReference(comp, IVec{0, 0}, IVec{5, 5});
    auto b = computeReference(comp, IVec{0, 0}, IVec{5, 5});
    EXPECT_EQ(a.at(IVec{5, 5}), b.at(IVec{5, 5}));
    EXPECT_EQ(a.at(IVec{3, 2}), b.at(IVec{3, 2}));
}

TEST(Executor, ExpandedStorageCorrectUnderAllSchedules)
{
    for (const Stencil &stencil :
         {stencils::simpleExample(), stencils::fivePoint()}) {
        StencilComputation comp(stencil);
        for (const auto &sched : legalSchedules2D(stencil)) {
            ExecutionResult r = runWithExpandedStorage(
                comp, *sched, IVec{0, 0}, IVec{8, 8});
            EXPECT_TRUE(r.correct())
                << stencil.str() << " under " << sched->name();
            EXPECT_EQ(r.points, 81u);
        }
    }
}

TEST(Executor, UovCorrectUnderEveryLegalSchedule)
{
    // THE claim (Section 3.1): OV-mapped storage with a universal OV
    // introduces no schedule restriction.
    struct Case
    {
        Stencil stencil;
        IVec uov;
    };
    std::vector<Case> cases = {
        {stencils::simpleExample(), IVec{1, 1}},
        {stencils::simpleExample(), IVec{2, 2}},   // non-prime UOV
        {stencils::fivePoint(), IVec{2, 0}},       // Figure 5
        {stencils::fivePoint(), IVec{5, 0}},       // initial UOV
        {stencils::threeVector(), stencils::threeVector().initialUov()},
    };
    for (const auto &c : cases) {
        UovOracle oracle(c.stencil);
        ASSERT_TRUE(oracle.isUov(c.uov)) << c.uov.str();
        StencilComputation comp(c.stencil);
        for (const auto &sched : legalSchedules2D(c.stencil)) {
            for (ModLayout layout :
                 {ModLayout::Interleaved, ModLayout::Blocked}) {
                ExecutionResult r = runWithOvStorage(
                    comp, *sched, IVec{0, 0}, IVec{8, 8}, c.uov, layout);
                EXPECT_TRUE(r.correct())
                    << c.stencil.str() << " ov=" << c.uov.str()
                    << " under " << sched->name() << ": "
                    << r.mismatches << " mismatches";
                EXPECT_EQ(r.clobbers, 0u)
                    << c.stencil.str() << " ov=" << c.uov.str()
                    << " under " << sched->name();
            }
        }
    }
}

TEST(Executor, ChecksumIdenticalAcrossSchedules)
{
    Stencil stencil = stencils::fivePoint();
    StencilComputation comp(stencil);
    auto scheds = legalSchedules2D(stencil);
    ExecutionResult first = runWithOvStorage(
        comp, *scheds[0], IVec{0, 0}, IVec{7, 9}, IVec{2, 0});
    for (size_t i = 1; i < scheds.size(); ++i) {
        ExecutionResult r = runWithOvStorage(
            comp, *scheds[i], IVec{0, 0}, IVec{7, 9}, IVec{2, 0});
        EXPECT_EQ(r.checksum, first.checksum) << scheds[i]->name();
    }
}

TEST(Executor, NonUniversalOvIsScheduleDependent)
{
    // Stencil {(1,0)}: ov = (0,1) is NOT universal, yet it is exactly
    // right for the column-major schedule (the storage-optimized code
    // of Figure 1(c) is this phenomenon).  It must fail under the
    // row-major schedule.
    Stencil stencil({IVec{1, 0}});
    UovOracle oracle(stencil);
    IVec ov{0, 1};
    ASSERT_FALSE(oracle.isUov(ov));

    StencilComputation comp(stencil);
    // Compatible schedule: correct.
    ExecutionResult good = runWithOvStorage(
        comp, LexSchedule({1, 0}), IVec{0, 0}, IVec{6, 6}, ov);
    EXPECT_TRUE(good.correct());
    EXPECT_EQ(good.clobbers, 0u);

    // Original row-major schedule: cells clobbered, values wrong.
    ExecutionResult bad = runWithOvStorage(
        comp, LexSchedule::identity(2), IVec{0, 0}, IVec{6, 6}, ov);
    EXPECT_FALSE(bad.correct());
    EXPECT_GT(bad.clobbers, 0u);
}

TEST(Executor, TooShortOvFailsSomewhere)
{
    // (1,0) is shorter than the UOV (1,1) of the simple example; some
    // legal schedule must break it.
    Stencil stencil = stencils::simpleExample();
    ASSERT_FALSE(UovOracle(stencil).isUov(IVec{1, 0}));
    StencilComputation comp(stencil);
    bool failed_somewhere = false;
    for (const auto &sched : legalSchedules2D(stencil)) {
        ExecutionResult r = runWithOvStorage(
            comp, *sched, IVec{0, 0}, IVec{8, 8}, IVec{1, 0});
        if (!r.correct())
            failed_somewhere = true;
    }
    EXPECT_TRUE(failed_somewhere);
}

TEST(Executor, ClobberDiagnosticsPinpointCell)
{
    Stencil stencil({IVec{1, 0}});
    StencilComputation comp(stencil);
    StorageMapping sm = StorageMapping::create(
        IVec{0, 1}, Polyhedron::box(IVec{0, 0}, IVec{3, 3}));
    CheckedOVArray<uint64_t> store(sm);
    // Manual mini-run that forces one clobber.
    store.write(IVec{0, 0}, 1);
    store.write(IVec{0, 1}, 2); // same cell as (0,0)+ov
    store.read(IVec{1, 0}, IVec{0, 0});
    ASSERT_EQ(store.violations().size(), 1u);
    EXPECT_EQ(store.violations()[0].actual_writer, (IVec{0, 1}));
}

TEST(Executor, BoundaryFunctionIsUsed)
{
    StencilComputation constant_boundary(
        stencils::simpleExample(), [](const IVec &) { return 7ull; });
    StencilComputation default_boundary(stencils::simpleExample());
    auto a = computeReference(constant_boundary, IVec{0, 0}, IVec{4, 4});
    auto b = computeReference(default_boundary, IVec{0, 0}, IVec{4, 4});
    EXPECT_NE(a.at(IVec{4, 4}), b.at(IVec{4, 4}));
}

TEST(Executor, ThreeDimensionalUovRun)
{
    Stencil stencil = stencils::heat3D();
    StencilComputation comp(stencil);
    ASSERT_TRUE(UovOracle(stencil).isUov(IVec{2, 0, 0}));

    std::vector<std::unique_ptr<Schedule>> scheds;
    scheds.push_back(
        std::make_unique<LexSchedule>(LexSchedule::identity(3)));
    IMatrix skew = skewToNonNegative(stencil);
    scheds.push_back(std::make_unique<TiledSchedule>(
        TiledSchedule({2, 3, 3}, skew, "skew-tile-3d")));
    scheds.push_back(
        std::make_unique<RandomTopoSchedule>(stencil, 5));

    for (const auto &sched : scheds) {
        ExecutionResult r = runWithOvStorage(
            comp, *sched, IVec{0, 0, 0}, IVec{5, 4, 4}, IVec{2, 0, 0});
        EXPECT_TRUE(r.correct()) << sched->name();
        EXPECT_EQ(r.clobbers, 0u) << sched->name();
    }
}

} // namespace
} // namespace uov
