#include "sim/machine.h"

#include <sstream>

#include "support/error.h"
#include "support/table.h"

namespace uov {

MachineConfig
MachineConfig::pentiumPro()
{
    MachineConfig m;
    m.name = "PentiumPro-200";
    m.l1 = {"L1D", 8 << 10, 32, 2};
    m.l2 = {"L2", 256 << 10, 32, 4};
    m.tlb_entries = 64;
    m.memory_bytes = 32ll << 20;
    m.base_cycles_per_op = 1.0;
    m.l2_hit_cycles = 6.0;
    m.memory_cycles = 50.0;
    m.tlb_miss_cycles = 25.0;
    m.page_fault_cycles = 200000.0;
    m.branch_cycles = 1.0;
    m.branch_mispredict_cycles = 4.0;
    m.branch_mispredict_rate = 0.08; // strong P6 predictor
    return m;
}

MachineConfig
MachineConfig::ultra2()
{
    MachineConfig m;
    m.name = "Ultra2-200";
    m.l1 = {"L1D", 16 << 10, 32, 1};
    m.l2 = {"L2", 1 << 20, 64, 1};
    m.tlb_entries = 64;
    m.memory_bytes = 128ll << 20;
    m.base_cycles_per_op = 1.0;
    m.l2_hit_cycles = 8.0;
    m.memory_cycles = 45.0;
    m.tlb_miss_cycles = 30.0;
    m.page_fault_cycles = 200000.0;
    m.branch_cycles = 1.0;
    m.branch_mispredict_cycles = 6.0;
    m.branch_mispredict_rate = 0.18; // static prediction hurts PSM
    return m;
}

MachineConfig
MachineConfig::alpha21164()
{
    MachineConfig m;
    m.name = "Alpha21164-500";
    m.l1 = {"L1D", 8 << 10, 32, 1};
    m.l2 = {"L2", 96 << 10, 64, 3};
    m.l3 = CacheConfig{"L3", 2 << 20, 64, 1};
    m.tlb_entries = 64;
    m.memory_bytes = 256ll << 20;
    m.base_cycles_per_op = 0.7; // 4-issue core
    m.l2_hit_cycles = 8.0;
    m.l3_hit_cycles = 25.0;
    m.memory_cycles = 90.0; // 500 MHz core, same DRAM latency
    m.tlb_miss_cycles = 40.0;
    m.page_fault_cycles = 400000.0;
    m.branch_cycles = 1.0;
    m.branch_mispredict_cycles = 5.0;
    m.branch_mispredict_rate = 0.16; // in-order, shallow predictor
    return m;
}

MemorySystem::MemorySystem(MachineConfig config)
    : _config(std::move(config)), _l1(_config.l1), _l2(_config.l2),
      _tlb(_config.tlb_entries, _config.page_bytes),
      _resident(_config.memory_bytes / _config.page_bytes,
                _config.page_bytes)
{
    UOV_REQUIRE(_config.memory_bytes >= _config.page_bytes,
                "machine must have at least one page of memory");
    if (_config.l3)
        _l3.emplace(*_config.l3);
}

void
MemorySystem::access(uint64_t addr, bool is_write)
{
    ++_accesses;
    _cycles += _config.base_cycles_per_op;

    uint64_t wb_before = _l1.writebacks();
    if (_l1.access(addr, is_write)) {
        _cycles += _config.l1_hit_cycles;
        return;
    }
    // A dirty victim drains toward L2 (write-back, write-allocate).
    if (_l1.writebacks() != wb_before)
        _cycles += _config.writeback_cycles;
    // Translation modeled on the L1-miss path only (an L1 hit implies
    // a recently used -- hence translated -- page).
    if (!_tlb.access(addr))
        _cycles += _config.tlb_miss_cycles;
    if (_l2.access(addr)) {
        _cycles += _config.l2_hit_cycles;
        return;
    }
    if (_l3) {
        if (_l3->access(addr)) {
            _cycles += _config.l3_hit_cycles;
            return;
        }
    }
    // Off-chip.  A next-line prefetcher hides most of the latency for
    // accesses that continue a recent miss stream.  Streams are
    // detected at the granularity of the last on-chip level's lines
    // (that is what actually misses to memory).
    int64_t stream_line = _config.l3 ? _config.l3->line_bytes
                                     : _config.l2.line_bytes;
    uint64_t line = addr / static_cast<uint64_t>(stream_line);
    bool prefetched = false;
    if (_config.next_line_prefetch) {
        for (uint64_t prev : _recent_miss_lines) {
            if (prev != 0 && prev + 1 == line) {
                prefetched = true;
                break;
            }
        }
    }
    _recent_miss_lines[_recent_next] = line;
    _recent_next = (_recent_next + 1) % kStreamTableSize;
    if (prefetched) {
        ++_prefetch_hits;
        _cycles += _config.l2_hit_cycles;
    } else {
        _cycles += _config.memory_cycles;
    }
    // Off-chip: is the page resident?  (Resident-set tracking on the
    // miss path only -- cache hits imply residency.)  A fault with
    // free frames is a minor fault (allocate + zero); once physical
    // memory is full every fault evicts -- with these streaming
    // kernels a dirty page -- and pays the disk penalty.  That is the
    // paper's "falls out of memory" regime.
    bool was_full = _resident.full();
    if (!_resident.access(addr)) {
        if (was_full) {
            _cycles += _config.page_fault_cycles;
            ++_page_faults;
        } else {
            _cycles += _config.minor_fault_cycles;
        }
    }
}

void
MemorySystem::branch()
{
    ++_branches;
    _cycles += _config.branch_cycles +
               _config.branch_mispredict_rate *
                   _config.branch_mispredict_cycles;
}

void
MemorySystem::reset()
{
    _l1.reset();
    _l2.reset();
    if (_l3)
        _l3->reset();
    _tlb.reset();
    _resident.reset();
    _cycles = 0.0;
    _accesses = _branches = _page_faults = 0;
    _prefetch_hits = 0;
    for (auto &l : _recent_miss_lines)
        l = 0;
    _recent_next = 0;
}

Table
MemorySystem::statsTable() const
{
    Table t(_config.name + " memory-system statistics");
    t.header({"level", "accesses", "misses", "miss rate",
              "writebacks"});
    auto add = [&](const char *name, const Cache &cache) {
        t.addRow()
            .cell(name)
            .cell(formatCount(static_cast<int64_t>(cache.accesses())))
            .cell(formatCount(static_cast<int64_t>(cache.misses())))
            .cell(formatDouble(cache.missRate() * 100, 2) + "%")
            .cell(formatCount(
                static_cast<int64_t>(cache.writebacks())));
    };
    add("L1", _l1);
    add("L2", _l2);
    if (_l3)
        add("L3", *_l3);
    t.addRow()
        .cell("TLB")
        .cell(formatCount(
            static_cast<int64_t>(_tlb.hits() + _tlb.misses())))
        .cell(formatCount(static_cast<int64_t>(_tlb.misses())))
        .cell(formatDouble(_tlb.missRate() * 100, 2) + "%")
        .cell("-");
    t.addRow()
        .cell("memory")
        .cell(formatCount(static_cast<int64_t>(_accesses)))
        .cell(formatCount(static_cast<int64_t>(_page_faults)))
        .cell("(major faults)")
        .cell(formatCount(static_cast<int64_t>(_prefetch_hits)) +
              " prefetched");
    return t;
}

std::string
MemorySystem::statsString() const
{
    std::ostringstream oss;
    oss << _config.name << ": " << formatCount(_accesses)
        << " accesses, L1 miss " << formatDouble(_l1.missRate() * 100, 1)
        << "%, L2 miss " << formatDouble(_l2.missRate() * 100, 1) << "%";
    if (_l3)
        oss << ", L3 miss " << formatDouble(_l3->missRate() * 100, 1)
            << "%";
    oss << ", TLB miss " << formatDouble(_tlb.missRate() * 100, 2)
        << "%, " << formatCount(_page_faults) << " page faults, "
        << formatDouble(_cycles, 0) << " cycles";
    return oss.str();
}

} // namespace uov
