#include "fuzz/generator.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "schedule/legality.h"
#include "support/error.h"

namespace uov {
namespace fuzz {

namespace {

/** One random lex-positive vector with |coords| <= max_coord. */
IVec
randomLexPositive(SplitMix64 &rng, size_t dim, int64_t max_coord)
{
    for (;;) {
        std::vector<int64_t> c(dim);
        // Dimension 0 stays non-negative so the stencil admits an
        // exact positive functional (see header contract).
        c[0] = rng.nextInRange(0, max_coord);
        for (size_t k = 1; k < dim; ++k)
            c[k] = rng.nextInRange(-max_coord, max_coord);
        IVec v(std::move(c));
        if (!v.isZero() && v.isLexPositive())
            return v;
    }
}

} // namespace

Stencil
randomStencilDim(SplitMix64 &rng, size_t dim, const GenOptions &opt)
{
    size_t m = 1 + rng.nextBelow(opt.max_deps);
    std::set<IVec> deps;
    // Distinctness by construction; bounded retries keep the stream
    // deterministic even when the space of small vectors is tight.
    for (size_t tries = 0; deps.size() < m && tries < 8 * m; ++tries)
        deps.insert(randomLexPositive(rng, dim, opt.max_coord));
    return Stencil(std::vector<IVec>(deps.begin(), deps.end()));
}

Stencil
randomStencil(SplitMix64 &rng, const GenOptions &opt)
{
    size_t dim = opt.min_dim +
                 rng.nextBelow(opt.max_dim - opt.min_dim + 1);
    return randomStencilDim(rng, dim, opt);
}

IVec
randomCandidate(SplitMix64 &rng, size_t dim, int64_t radius)
{
    // Half the draws concentrate on the small shell where UOV
    // membership actually flips; the rest cover the full cube.
    int64_t r = rng.nextBelow(2) == 0 ? std::min<int64_t>(radius, 2)
                                      : radius;
    std::vector<int64_t> c(dim);
    for (size_t k = 0; k < dim; ++k)
        c[k] = rng.nextInRange(-r, r);
    return IVec(std::move(c));
}

void
randomIsgBox(SplitMix64 &rng, size_t dim, const GenOptions &opt,
             IVec &lo, IVec &hi)
{
    std::vector<int64_t> l(dim), h(dim);
    for (size_t k = 0; k < dim; ++k) {
        l[k] = rng.nextInRange(-3, 3);
        h[k] = l[k] + opt.min_box_side +
               rng.nextInRange(0, opt.max_box_side - opt.min_box_side);
    }
    lo = IVec(std::move(l));
    hi = IVec(std::move(h));
}

LoopNest
randomNest(SplitMix64 &rng, const GenOptions &opt)
{
    size_t dim = opt.min_dim +
                 rng.nextBelow(opt.max_dim - opt.min_dim + 1);
    IVec lo, hi;
    randomIsgBox(rng, dim, opt, lo, hi);

    std::ostringstream name;
    name << "fz" << std::hex << (rng.next() & 0xffff);
    LoopNest nest(name.str(), lo, hi);

    size_t nstmts = 1 + rng.nextBelow(opt.max_statements);
    for (size_t s = 0; s < nstmts; ++s) {
        std::string array(1, static_cast<char>('A' + s));
        Statement stmt;
        stmt.name = array;
        stmt.write = uniformAccess(array, IVec(dim));
        // Reads at offset -v for lex-positive v: each read's value
        // dependence distance is exactly v, so every statement carries
        // a regular flow stencil the analysis layer accepts.
        Stencil deps = randomStencilDim(rng, dim, opt);
        for (const auto &v : deps.deps())
            stmt.reads.push_back(uniformAccess(array, -v));
        nest.addStatement(std::move(stmt));
    }
    return nest;
}

std::unique_ptr<Schedule>
randomLegalSchedule(SplitMix64 &rng, const Stencil &stencil,
                    bool cone_safe)
{
    size_t d = stencil.dim();
    uint64_t kind = rng.nextBelow(4);

    // Draw every stream value the branch *might* need up front so the
    // rng advances identically whichever fallback is taken: replaying
    // a seed reproduces the same schedule choice sequence.
    uint64_t topo_seed = rng.next();

    // The cone-safe fallback in place of a random topological order:
    // a wavefront along the exact positive functional respects the
    // full dependence cone on any box (see the header contract).
    auto fallback = [&]() -> std::unique_ptr<Schedule> {
        if (cone_safe) {
            auto h = stencil.positiveFunctional();
            if (h && wavefrontLegal(*h, stencil))
                return std::make_unique<WavefrontSchedule>(*h);
            std::vector<size_t> perm(d);
            for (size_t k = 0; k < d; ++k)
                perm[k] = k;
            return std::make_unique<LexSchedule>(std::move(perm));
        }
        return std::make_unique<RandomTopoSchedule>(stencil, topo_seed);
    };

    if (kind == 1) {
        std::vector<size_t> perm(d);
        for (size_t k = 0; k < d; ++k)
            perm[k] = k;
        for (size_t k = d; k > 1; --k)
            std::swap(perm[k - 1], perm[rng.nextBelow(k)]);
        if (!permutationLegal(perm, stencil)) {
            for (size_t k = 0; k < d; ++k)
                perm[k] = k; // identity: the original program order
        }
        return std::make_unique<LexSchedule>(std::move(perm));
    }

    if (kind == 2) {
        auto h = stencil.positiveFunctional();
        if (h) {
            IVec w = *h;
            for (size_t k = 0; k < d; ++k)
                w[k] += rng.nextInRange(0, 2);
            if (wavefrontLegal(w, stencil))
                return std::make_unique<WavefrontSchedule>(w);
        }
        return fallback();
    }

    if (kind == 3) {
        bool advances = true;
        for (const auto &v : stencil.deps())
            if (v[0] <= 0)
                advances = false;
        std::vector<int64_t> sizes(d);
        for (size_t k = 0; k < d; ++k)
            sizes[k] = 1 + static_cast<int64_t>(rng.nextBelow(4));
        if (advances) {
            IMatrix t = skewToNonNegative(stencil);
            if (tilingLegal(t, stencil))
                return std::make_unique<TiledSchedule>(
                    std::move(sizes), std::move(t), "fuzz-skew-tiled");
        }
        return fallback();
    }

    return fallback();
}

} // namespace fuzz
} // namespace uov
