/**
 * @file
 * Regression tests for the fused record-and-replay pipeline: one
 * StreamingSim kernel pass must be bit-identical -- per-level hits,
 * misses, writebacks, page faults, and total cycles -- to recording a
 * trace and replaying it per machine, and to a dedicated SimMem run.
 * This is what licenses the scaling benches to drop trace
 * materialization: the 1998 "shape" results are unchanged, only
 * faster to regenerate.
 */

#include <gtest/gtest.h>

#include "kernels/psm.h"
#include "kernels/stencil5.h"
#include "sim/streaming.h"
#include "sim/trace.h"

namespace uov {
namespace {

std::vector<MachineConfig>
threeMachines()
{
    return {MachineConfig::pentiumPro(), MachineConfig::ultra2(),
            MachineConfig::alpha21164()};
}

/** Assert every observable statistic matches between two systems. */
void
expectIdenticalStats(const MemorySystem &a, const MemorySystem &b,
                     const std::string &label)
{
    EXPECT_EQ(a.accesses(), b.accesses()) << label;
    EXPECT_EQ(a.branches(), b.branches()) << label;
    EXPECT_EQ(a.pageFaults(), b.pageFaults()) << label;
    auto level = [&](const Cache *x, const Cache *y, const char *name) {
        ASSERT_EQ(x == nullptr, y == nullptr) << label << " " << name;
        if (!x)
            return;
        EXPECT_EQ(x->hits(), y->hits()) << label << " " << name;
        EXPECT_EQ(x->misses(), y->misses()) << label << " " << name;
        EXPECT_EQ(x->writebacks(), y->writebacks())
            << label << " " << name;
    };
    level(&a.l1(), &b.l1(), "L1");
    level(&a.l2(), &b.l2(), "L2");
    level(a.l3(), b.l3(), "L3");
    EXPECT_EQ(a.tlb().misses(), b.tlb().misses()) << label;
    // Bit-identical, not approximately equal: the fused pass and the
    // replay charge the same doubles in the same order.
    EXPECT_EQ(a.cycles(), b.cycles()) << label;
}

TEST(StreamingSim, FusedMatchesRecordThenReplayOnFigure7Workload)
{
    // The Figure 7 stencil workload: L=128, T=15 (fits L1), every
    // measured variant, all three machine configs at once.
    Stencil5Config cfg;
    cfg.length = 128;
    cfg.steps = 15;

    auto machines = threeMachines();
    for (Stencil5Variant v : allStencil5Variants()) {
        // Fused: one kernel pass streams into all three machines.
        MultiMachineSim fused(machines);
        double fused_result;
        {
            StreamingSim mem = fused.policy();
            VirtualArena arena;
            fused_result = runStencil5(v, cfg, mem, arena);
        }

        // Record once, replay per machine.
        Trace trace;
        double traced_result;
        {
            VirtualArena arena;
            TracingMem mem{&trace, 0};
            traced_result = runStencil5(v, cfg, mem, arena);
        }
        EXPECT_EQ(fused_result, traced_result)
            << stencil5VariantName(v);

        for (size_t m = 0; m < machines.size(); ++m) {
            MemorySystem replayed(machines[m]);
            trace.replay(replayed);
            expectIdenticalStats(
                fused.system(m), replayed,
                std::string(stencil5VariantName(v)) + " on " +
                    machines[m].name);
        }
    }
}

TEST(StreamingSim, FusedMatchesDedicatedSimMemRuns)
{
    // Same single-machine semantics as SimMem, for a branchy kernel
    // too (PSM exercises branch accounting through the fan-out).
    PsmConfig cfg;
    cfg.n0 = 48;
    cfg.n1 = 40;

    auto machines = threeMachines();
    MultiMachineSim fused(machines);
    {
        StreamingSim mem = fused.policy();
        VirtualArena arena;
        runPsm(PsmVariant::Ov, cfg, mem, arena);
    }
    for (size_t m = 0; m < machines.size(); ++m) {
        MemorySystem direct(machines[m]);
        {
            SimMem mem{&direct};
            VirtualArena arena;
            runPsm(PsmVariant::Ov, cfg, mem, arena);
        }
        expectIdenticalStats(fused.system(m), direct,
                             machines[m].name);
    }
}

TEST(MultiMachineSim, OwnsSystemsAndCountsEvents)
{
    MultiMachineSim sim(threeMachines());
    ASSERT_EQ(sim.size(), 3u);
    StreamingSim mem = sim.policy();
    ASSERT_EQ(mem.systems.size(), 3u);

    VirtualArena arena;
    SimBuffer<float> buf(arena, 64, 1.0f);
    float x = mem.load(buf, 0);
    mem.store(buf, 1, x + 1.0f);
    mem.branch();
    for (size_t m = 0; m < sim.size(); ++m) {
        EXPECT_EQ(sim.system(m).accesses(), 2u);
        EXPECT_EQ(sim.system(m).branches(), 1u);
    }
    // 3 events fanned out to 3 machines.
    EXPECT_EQ(sim.eventsProcessed(), 9u);
    EXPECT_EQ(buf[1], 2.0f);

    sim.reset();
    EXPECT_EQ(sim.eventsProcessed(), 0u);
    EXPECT_THROW(sim.system(3), UovUserError);
    EXPECT_THROW(MultiMachineSim({}), UovUserError);
}

} // namespace
} // namespace uov
