/**
 * @file
 * Pluggable candidate evaluators for the joint autotuner.
 *
 * A TuneCandidate is one point of the joint (UOV, schedule, factors)
 * space: a storage discipline with its mapping plan plus a composed
 * ScheduleBuilder.  An Evaluator scores candidates (lower is better);
 * two implementations ship:
 *
 *  - SimEvaluator replays the candidate's emitted memory-access order
 *    through a sim/machine.h MemorySystem and returns modeled cycles.
 *    Fully deterministic -- a pure function of (nest, candidate,
 *    machine config) -- so it backs the service's byte-deterministic
 *    response prefix and the fuzz oracle's repeat-run check.
 *
 *  - JitEvaluator lowers the candidate to CodegenOptions, compiles it
 *    with the cached JitCompiler, verifies the kernel bit-exactly
 *    against the interpreter reference, and returns the median of k
 *    timed runs in nanoseconds.  Nondeterministic (wall clock), so
 *    its figures live in the _ns-exempt zone of response lines.
 */

#ifndef UOV_TUNE_EVALUATOR_H
#define UOV_TUNE_EVALUATOR_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "schedule/builder.h"
#include "sim/machine.h"

namespace uov {
namespace tune {

/** One point of the joint (UOV, schedule, factors) search space. */
struct TuneCandidate
{
    ScheduleBuilder schedule;
    GenStorage storage = GenStorage::Expanded;
    /** Mapping plan for this candidate's UOV; shared across the
     *  schedule variants enumerated for the same vector. */
    std::shared_ptr<const MappingPlan> plan;

    /** The candidate's occupancy vector (the plan's mapping OV). */
    const IVec &uov() const { return plan->mapping.ov(); }

    /** Temporary-array cells this candidate allocates. */
    int64_t cells() const;

    /** Deterministic one-token-per-field description, e.g.
     *  "storage=ov uov=(1, 0) schedule=unroll(4);jam(2)". */
    std::string str() const;
};

/**
 * Per-nest evaluation state shared across candidates: the nest, its
 * stencil, and the lazily computed interpreter reference output the
 * JIT evaluator verifies against.
 */
class TuneContext
{
  public:
    TuneContext(const LoopNest &nest, const Stencil &stencil)
        : _nest(&nest), _stencil(&stencil)
    {}

    const LoopNest &nest() const { return *_nest; }
    const Stencil &stencil() const { return *_stencil; }

    /** interpretKernel(nest), computed once on first use. */
    const std::vector<double> &reference();

  private:
    const LoopNest *_nest;
    const Stencil *_stencil;
    std::optional<std::vector<double>> _ref;
};

/** Scores candidates; lower is better. */
class Evaluator
{
  public:
    virtual ~Evaluator() = default;

    /** Short tag for logs and bench tables. */
    virtual std::string name() const = 0;

    /**
     * Score one candidate.  @throws UovUserError when this backend
     * cannot evaluate the candidate (e.g. no native lowering);
     * UovError on internal failure (divergence, compile error).
     */
    virtual double score(TuneContext &ctx,
                         const TuneCandidate &cand) = 0;
};

/**
 * Cache/TLB cost model: replays the candidate's emitted iteration
 * order -- including the register-tiled body grouping, where reads
 * forwarded from an in-body write or coinciding with an already
 * loaded cell are free -- through a MemorySystem and returns cycles.
 */
class SimEvaluator : public Evaluator
{
  public:
    explicit SimEvaluator(
        MachineConfig machine = MachineConfig::ultra2())
        : _machine(std::move(machine))
    {}

    std::string name() const override { return "sim:" + _machine.name; }
    double score(TuneContext &ctx, const TuneCandidate &cand) override;

  private:
    MachineConfig _machine;
};

/**
 * Measurement backend: JIT-compile the lowered candidate, verify it
 * bit-exactly against the interpreter (a divergence throws -- the
 * tune fuzz oracle's contract), and return the median of `runs`
 * wall-clock timings in nanoseconds.
 */
struct JitEvalOptions
{
    int runs = 5;   ///< timed runs per candidate (median taken)
    JitOptions jit; ///< compiler/flags/cache configuration
};

class JitEvaluator : public Evaluator
{
  public:
    /** @throws UovUserError when no host compiler resolves */
    explicit JitEvaluator(JitEvalOptions options = {});

    std::string name() const override { return "jit"; }
    double score(TuneContext &ctx, const TuneCandidate &cand) override;

    JitCompiler &compiler() { return _jit; }

  private:
    JitCompiler _jit;
    int _runs;
};

} // namespace tune
} // namespace uov

#endif // UOV_TUNE_EVALUATOR_H
