/**
 * @file
 * Schedule legality against a dependence stencil.
 *
 * Two flavours: algebraic checks for affine schedule families (the
 * compile-time tests a compiler would run) and an empirical check that
 * replays any Schedule over a box and verifies every dependence edge
 * is satisfied (the oracle the algebraic checks are tested against).
 */

#ifndef UOV_SCHEDULE_LEGALITY_H
#define UOV_SCHEDULE_LEGALITY_H

#include <vector>

#include "core/stencil.h"
#include "schedule/schedule.h"

namespace uov {

/**
 * Loop permutation legality: every permuted distance vector must stay
 * lexicographically positive.
 */
bool permutationLegal(const std::vector<size_t> &perm,
                      const Stencil &stencil);

/**
 * Unimodular transform legality: T*v lexicographically positive for
 * every dependence v.
 */
bool transformLegal(const IMatrix &transform, const Stencil &stencil);

/**
 * Rectangular tiling legality in the transformed space: atomic tiles
 * of any size executed lexicographically are legal iff every
 * transformed distance is component-wise non-negative (and nonzero).
 * This is the classic "forward dependences only" condition; stencils
 * with negative components need skewing first (Section 2's tiling
 * discussion; the 5-point stencil is the canonical case).
 */
bool tilingLegal(const IMatrix &transform, const Stencil &stencil);

/** Wavefront legality: h . v > 0 for every dependence. */
bool wavefrontLegal(const IVec &h, const Stencil &stencil);

/**
 * True iff jamming the loop at dimension @p jam_dim by @p factor
 * preserves every dependence in @p dists.  Jamming interleaves
 * @p factor consecutive jam-dim iterations across the inner loops;
 * a dependence with zero distance on every outer dimension, jam-dim
 * distance in [1, factor), and a lexicographically negative inner
 * suffix would make a consumer run before its producer.  Pure
 * innermost unrolling never reorders, so it needs no check.
 */
bool jamLegal(const std::vector<IVec> &dists, size_t jam_dim,
              int64_t factor);

/**
 * Empirical oracle: run the schedule over [lo, hi] and check every
 * in-box dependence edge executes producer-before-consumer and that
 * every point is visited exactly once.
 */
bool scheduleRespectsStencil(const Schedule &schedule, const IVec &lo,
                             const IVec &hi, const Stencil &stencil);

/**
 * The canonical legal skew for a stencil whose non-time components can
 * be negative: y0 = q0, yk = qk + f_k * q0 with f_k = max over deps of
 * ceil(-v_k / v_0) (only defined when every dependence advances
 * dimension 0).  After this transform all distances are component-wise
 * non-negative, so rectangular tiling is legal.
 * @throws UovUserError if some dependence has v_0 <= 0
 */
IMatrix skewToNonNegative(const Stencil &stencil);

} // namespace uov

#endif // UOV_SCHEDULE_LEGALITY_H
