#include "analysis/pipeline.h"

#include <sstream>

#include "core/storage_count.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/table.h"

namespace uov {

double
MappingPlan::expansionRatio() const
{
    return static_cast<double>(expanded_cells) /
           static_cast<double>(mapping.cellCount());
}

std::string
MappingPlan::str() const
{
    std::ostringstream oss;
    oss << "stencil " << stencil.str() << "\n"
        << "uov     " << search.best_uov << " (initial "
        << stencil.initialUov() << ")\n"
        << "mapping " << mapping.str() << "\n"
        << "regions " << regions.str() << "\n"
        << "cells   " << mapping.cellCount() << " vs " << expanded_cells
        << " expanded (" << formatDouble(expansionRatio(), 1) << "x)";
    return oss.str();
}

MappingPlan
planStorageMapping(const LoopNest &nest, size_t stmt_index,
                   const PlanOptions &options)
{
    Stencil stencil = extractStencil(nest, stmt_index);
    UOV_LOG_INFO("pipeline: " << nest.str() << " stencil "
                              << stencil.str());

    LiveOutPredicate live =
        options.live_out ? options.live_out : live_out::nothing();
    RegionSummary regions = analyzeRegions(nest, stmt_index, live);
    UOV_REQUIRE(regions.hasTemporaries(),
                "statement writes no temporary values ("
                    << regions.str()
                    << "); OV mapping is not applicable");

    SearchResult search;
    if (options.use_initial_uov) {
        search.best_uov = stencil.initialUov();
        if (options.objective == SearchObjective::BoundedStorage) {
            search.initial_objective =
                storageCellCount(search.best_uov, nest.domain());
        } else {
            search.initial_objective = search.best_uov.normSquared();
        }
        search.best_objective = search.initial_objective;
    } else {
        SearchOptions sopts;
        if (options.objective == SearchObjective::BoundedStorage)
            sopts.isg = nest.domain();
        search = BranchBoundSearch(stencil, options.objective, sopts)
                     .run();
    }

    StorageMapping mapping = StorageMapping::create(
        search.best_uov, nest.domain(), options.layout);

    MappingPlan plan{std::move(stencil), std::move(search),
                     std::move(mapping), std::move(regions),
                     nest.tripCount()};
    UOV_LOG_INFO("pipeline: chose UOV " << plan.search.best_uov << ", "
                                        << plan.mapping.cellCount()
                                        << " cells");
    return plan;
}

} // namespace uov
