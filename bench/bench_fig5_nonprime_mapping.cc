/**
 * @file
 * Reproduces Figure 5 and Section 4.2: the 5-point stencil's
 * non-prime UOV (2,0) and its two storage layouts --
 *   interleaved: SM(q) = (0,2).q + (q_t mod 2)
 *   blocked:     SM(q) = (0,1).q + (q_t mod 2) * L
 * including a cell-by-cell dump of both layouts on a small ISG.
 */

#include "bench_common.h"

#include "core/search.h"
#include "core/uov.h"
#include "mapping/storage_mapping.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Figure 5 (non-prime UOV (2,0): interleaved vs "
                  "blocked layouts)");

    Stencil five = stencils::fivePoint();
    SearchResult search =
        BranchBoundSearch(five, SearchObjective::ShortestVector).run();
    std::cout << "stencil " << five.str() << "\n"
              << "searched UOV: " << search.best_uov << " (paper: "
              << "(2, 0)); gcd = " << search.best_uov.content()
              << " -> non-prime, two storage classes\n\n";

    const int64_t t_max = 5, len = 7;
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{t_max, len});

    for (ModLayout layout :
         {ModLayout::Interleaved, ModLayout::Blocked}) {
        StorageMapping sm =
            StorageMapping::create(search.best_uov, isg, layout);
        const char *label =
            layout == ModLayout::Interleaved ? "interleaved" : "blocked";
        std::cout << label << ": " << sm.str() << "\n";

        // Cell map: rows t, columns i.
        std::cout << "  cell ids over t=0.." << t_max << " (rows) x i=0.."
                  << len << " (cols):\n";
        for (int64_t t = 0; t <= t_max; ++t) {
            std::cout << "    ";
            for (int64_t i = 0; i <= len; ++i) {
                int64_t c = sm(IVec{t, i});
                std::cout << (c < 10 ? " " : "") << c << " ";
            }
            std::cout << "\n";
        }
        std::cout << "\n";
    }

    // The paper's literal formulas, checked.
    StorageMapping inter = StorageMapping::create(
        IVec{2, 0}, isg, ModLayout::Interleaved);
    StorageMapping block =
        StorageMapping::create(IVec{2, 0}, isg, ModLayout::Blocked);
    uint64_t bad = 0;
    for (int64_t t = 0; t <= t_max; ++t) {
        for (int64_t i = 0; i <= len; ++i) {
            IVec q{t, i};
            if (inter(q) != 2 * i + (t % 2))
                ++bad;
            if (block(q) != i + (t % 2) * (len + 1))
                ++bad;
        }
    }
    Table t("Figure 5 formula check");
    t.header({"layout", "paper formula", "matches"});
    t.addRow().cell("interleaved").cell("(0,2).q + (q_t mod 2)")
        .cell(bad == 0 ? "yes" : "NO");
    t.addRow().cell("blocked").cell("(0,1).q + (q_t mod 2)*L")
        .cell(bad == 0 ? "yes" : "NO");
    bench::emit(t, opt);
    return bad == 0 ? 0 : 1;
}
