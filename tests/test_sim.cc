/**
 * @file
 * Unit tests for the machine simulator: cache behaviour, TLB, page
 * faults, cycle accounting, machine presets.
 */

#include <gtest/gtest.h>

#include "sim/cache.h"
#include "sim/machine.h"
#include "sim/memory_policy.h"
#include "sim/tlb.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(CacheModel, ConfigValidation)
{
    CacheConfig bad{"bad", 1000, 32, 2};
    EXPECT_THROW(Cache{bad}, UovUserError);
    CacheConfig bad_line{"bad", 8192, 33, 2};
    EXPECT_THROW(Cache{bad_line}, UovUserError);
    CacheConfig ok{"ok", 8192, 32, 2};
    EXPECT_NO_THROW(Cache{ok});
    EXPECT_EQ(ok.sets(), 8192 / (32 * 2));
}

TEST(CacheModel, ValidateRejectionMessages)
{
    auto message = [](const CacheConfig &cfg) {
        try {
            cfg.validate();
        } catch (const UovUserError &e) {
            return std::string(e.what());
        }
        return std::string("(no error)");
    };
    // Non-power-of-two line size, reported under the config's name.
    CacheConfig bad_line{"L1X", 8192, 48, 2};
    EXPECT_NE(message(bad_line).find("line size must be a power of two"),
              std::string::npos)
        << message(bad_line);
    EXPECT_NE(message(bad_line).find("L1X"), std::string::npos);
    // Sets = 192 / (32*2) = 3: not a power of two.
    CacheConfig bad_sets{"L2X", 192, 32, 2};
    EXPECT_NE(message(bad_sets).find("set count must be a power of two"),
              std::string::npos)
        << message(bad_sets);
    // Zero associativity.
    CacheConfig bad_assoc{"LA", 8192, 32, 0};
    EXPECT_NE(message(bad_assoc).find("associativity"),
              std::string::npos);
    // Size not divisible into whole sets.
    CacheConfig bad_div{"LD", 100, 32, 2};
    EXPECT_NE(message(bad_div).find("size must be sets*ways*line"),
              std::string::npos)
        << message(bad_div);
    // A valid geometry passes.
    CacheConfig ok{"ok", 8192, 32, 2};
    EXPECT_EQ(message(ok), "(no error)");
}

TEST(CacheModel, HitsOnRepeatedAccess)
{
    Cache c({"t", 1024, 32, 2});
    EXPECT_FALSE(c.access(0));     // cold miss
    EXPECT_TRUE(c.access(0));      // hit
    EXPECT_TRUE(c.access(31));     // same line
    EXPECT_FALSE(c.access(32));    // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheModel, LruEvictionWithinSet)
{
    // 2-way, 16 sets of 32B lines: addresses 0, 1024, 2048 map to set
    // 0 (line(addr)/32 mod 16 == 0).
    Cache c({"t", 1024, 32, 2});
    c.access(0);
    c.access(1024);
    c.access(0);    // touch 0 so 1024 becomes LRU
    c.access(2048); // evicts 1024
    EXPECT_TRUE(c.access(2048));
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(1024)); // was evicted (this refills the set)
}

TEST(CacheModel, StreamingMissRateMatchesLineSize)
{
    Cache c({"t", 8192, 32, 1});
    // Stream 64 KiB of 4-byte accesses: expect ~1 miss per 8 accesses.
    for (uint64_t a = 0; a < (64 << 10); a += 4)
        c.access(a);
    EXPECT_NEAR(c.missRate(), 1.0 / 8.0, 0.01);
}

TEST(CacheModel, WorkingSetFitsAfterWarmup)
{
    Cache c({"t", 8192, 32, 2});
    for (int pass = 0; pass < 4; ++pass)
        for (uint64_t a = 0; a < 8192; a += 4)
            c.access(a);
    // 3 warm passes out of 4: hit rate approaches 1 - 1/(4*8).
    EXPECT_GT(static_cast<double>(c.hits()) / c.accesses(), 0.95);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.access(0));
}

TEST(CacheModel, WritebacksTrackDirtyEvictions)
{
    // Direct-mapped, 2 sets of 32B lines: addresses 0 and 64 collide.
    Cache c({"t", 64, 32, 1});
    c.access(0, true);   // fill dirty
    EXPECT_EQ(c.writebacks(), 0u);
    c.access(64, false); // evicts dirty line 0 -> writeback
    EXPECT_EQ(c.writebacks(), 1u);
    c.access(0, false);  // evicts clean line 64 -> no writeback
    EXPECT_EQ(c.writebacks(), 1u);
    c.access(64, true);  // evicts clean line 0
    c.access(0, false);  // evicts dirty line 64 -> writeback
    EXPECT_EQ(c.writebacks(), 2u);
    c.reset();
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(MemorySystemModel, WritebacksCostCycles)
{
    MachineConfig m = MachineConfig::pentiumPro();
    auto stream = [&](bool writes) {
        MemorySystem ms(m);
        // Two passes so the second pass evicts pass-one lines.
        for (int pass = 0; pass < 2; ++pass)
            for (uint64_t a = 0; a < (64 << 10); a += 32)
                ms.access(a + pass * (1 << 20), writes);
        return ms.cycles();
    };
    EXPECT_GT(stream(true), stream(false));
}

TEST(TlbModel, LruOverPages)
{
    Tlb t(2, 4096);
    EXPECT_FALSE(t.access(0));
    EXPECT_FALSE(t.access(4096));
    EXPECT_TRUE(t.access(100));     // page 0 still resident
    EXPECT_FALSE(t.access(3 << 12)); // evicts page 1 (LRU)
    EXPECT_TRUE(t.access(0));
    EXPECT_FALSE(t.access(4096));
    EXPECT_THROW(Tlb(0, 4096), UovUserError);
    EXPECT_THROW(Tlb(4, 1000), UovUserError);
}

TEST(MachinePresets, ThreeTestbedsConstruct)
{
    for (const MachineConfig &cfg :
         {MachineConfig::pentiumPro(), MachineConfig::ultra2(),
          MachineConfig::alpha21164()}) {
        MemorySystem ms(cfg);
        EXPECT_EQ(ms.cycles(), 0.0) << cfg.name;
        ms.access(64, false);
        EXPECT_GT(ms.cycles(), 0.0) << cfg.name;
    }
    EXPECT_NE(MachineConfig::alpha21164().l3, std::nullopt);
    EXPECT_EQ(MachineConfig::pentiumPro().l3, std::nullopt);
}

TEST(MemorySystemModel, HitCostLessThanMissCost)
{
    MemorySystem ms(MachineConfig::pentiumPro());
    ms.access(0, false);
    double cold = ms.cycles();
    ms.access(0, false);
    double warm = ms.cycles() - cold;
    EXPECT_LT(warm, cold);
}

TEST(MemorySystemModel, LargeFootprintCausesPageFaults)
{
    MachineConfig tiny = MachineConfig::pentiumPro();
    tiny.memory_bytes = 1 << 20; // 1 MiB of "RAM"
    MemorySystem ms(tiny);
    // Touch 4 MiB twice; the second pass must still fault (capacity).
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t a = 0; a < (4 << 20); a += 4096)
            ms.access(a, true);
    EXPECT_GT(ms.pageFaults(), 1024u);
    EXPECT_NE(ms.statsString().find("page faults"), std::string::npos);
}

TEST(MemorySystemModel, SmallFootprintStaysResident)
{
    // Cold first touches are minor faults, not disk faults: with the
    // footprint far below memory, no major fault is ever charged.
    MemorySystem ms(MachineConfig::pentiumPro());
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t a = 0; a < (1 << 20); a += 64)
            ms.access(a, false);
    EXPECT_EQ(ms.pageFaults(), 0u);
}

TEST(MemorySystemModel, MinorFaultsCheaperThanMajorFaults)
{
    MachineConfig tiny = MachineConfig::pentiumPro();
    tiny.memory_bytes = 64 << 10; // 16 pages
    MemorySystem cold(tiny);
    for (uint64_t p = 0; p < 8; ++p)
        cold.access(p << 12, true); // 8 minor faults
    double minor_cost = cold.cycles();

    MemorySystem thrash(tiny);
    for (uint64_t p = 0; p < 32; ++p)
        thrash.access(p << 12, true); // 16 minor then 16 major
    EXPECT_GT(thrash.cycles(), 10 * minor_cost);
    EXPECT_EQ(thrash.pageFaults(), 16u);
}

TEST(MemorySystemModel, BranchAccounting)
{
    MemorySystem ms(MachineConfig::ultra2());
    double before = ms.cycles();
    ms.branch();
    const auto &cfg = ms.config();
    EXPECT_DOUBLE_EQ(ms.cycles() - before,
                     cfg.branch_cycles +
                         cfg.branch_mispredict_rate *
                             cfg.branch_mispredict_cycles);
    EXPECT_EQ(ms.branches(), 1u);
}

TEST(MemorySystemModel, StatsTableBreakdown)
{
    MemorySystem ms(MachineConfig::alpha21164());
    for (uint64_t a = 0; a < (256 << 10); a += 16)
        ms.access(a, a % 64 == 0);
    Table t = ms.statsTable();
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("L1"), std::string::npos);
    EXPECT_NE(out.find("L3"), std::string::npos); // Alpha has one
    EXPECT_NE(out.find("TLB"), std::string::npos);
    EXPECT_NE(out.find("prefetched"), std::string::npos);
    EXPECT_GE(t.rowCount(), 5u);
}

TEST(MemorySystemModel, ResetClearsEverything)
{
    MemorySystem ms(MachineConfig::pentiumPro());
    ms.access(0, false);
    ms.branch();
    ms.compute(10);
    ms.reset();
    EXPECT_EQ(ms.cycles(), 0.0);
    EXPECT_EQ(ms.accesses(), 0u);
    EXPECT_EQ(ms.branches(), 0u);
}

TEST(MemorySystemModel, NextLinePrefetchAcceleratesStreams)
{
    MachineConfig base = MachineConfig::ultra2();
    MachineConfig pf = base;
    pf.next_line_prefetch = true;

    auto stream_cycles = [](const MachineConfig &cfg) {
        MemorySystem ms(cfg);
        // 1 MiB sequential stream of floats: misses every 8th access
        // in a 32B-line L1.
        for (uint64_t a = (32 << 20); a < (33 << 20); a += 4)
            ms.access(a, false);
        return ms.cycles();
    };
    double without = stream_cycles(base);
    double with = stream_cycles(pf);
    EXPECT_LT(with, without * 0.8);

    MemorySystem ms(pf);
    for (uint64_t a = 0; a < (1 << 20); a += 4)
        ms.access(a, false);
    EXPECT_GT(ms.prefetchHits(), 1000u);
}

TEST(MemorySystemModel, PrefetchDoesNotHelpRandomAccess)
{
    MachineConfig pf = MachineConfig::ultra2();
    pf.next_line_prefetch = true;
    MemorySystem ms(pf);
    uint64_t a = 12345;
    for (int i = 0; i < 10000; ++i) {
        a = a * 6364136223846793005ULL + 1442695040888963407ULL;
        ms.access(a % (64 << 20), false);
    }
    // Random lines almost never continue a stream.
    EXPECT_LT(ms.prefetchHits(), 200u);
}

TEST(VirtualArenaModel, NonOverlappingAlignedRanges)
{
    VirtualArena arena;
    uint64_t a = arena.allocate(100);
    uint64_t b = arena.allocate(100);
    EXPECT_GE(b, a + 100);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
}

TEST(SimBufferModel, AddressesTrackIndices)
{
    VirtualArena arena;
    SimBuffer<float> buf(arena, 16, 1.5f);
    EXPECT_EQ(buf.size(), 16u);
    EXPECT_EQ(buf[3], 1.5f);
    EXPECT_EQ(buf.addr(4) - buf.addr(0), 4 * sizeof(float));
}

TEST(MemoryPolicies, SimMemRecordsNativeDoesNot)
{
    VirtualArena arena;
    SimBuffer<int> buf(arena, 8, 3);
    MemorySystem ms(MachineConfig::pentiumPro());

    NativeMem native;
    EXPECT_EQ(native.load(buf, 2), 3);
    native.store(buf, 2, 9);
    EXPECT_EQ(ms.accesses(), 0u);

    SimMem sim{&ms};
    EXPECT_EQ(sim.load(buf, 2), 9);
    sim.store(buf, 3, 4);
    EXPECT_EQ(ms.accesses(), 2u);
    EXPECT_EQ(buf[3], 4);
}

} // namespace
} // namespace uov
