#include "service/executor.h"

#include <functional>
#include <future>
#include <istream>
#include <sstream>

#include "support/error.h"

namespace uov {
namespace service {

namespace {

/** Strip comments and surrounding whitespace (nest_parser rules). */
std::string
cleanLine(const std::string &raw)
{
    std::string s = raw;
    auto hash = s.find('#');
    if (hash != std::string::npos)
        s.erase(hash);
    auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Parse one signed integer, rejecting trailing junk. */
bool
parseInt(const std::string &tok, int64_t &out)
{
    try {
        size_t used = 0;
        out = std::stoll(tok, &used);
        return used == tok.size();
    } catch (const std::logic_error &) {
        return false;
    }
}

/** Parse "[o1,o2,...]" (nest_parser access-offset syntax). */
bool
parseVec(const std::string &tok, IVec &out)
{
    if (tok.size() < 3 || tok.front() != '[' || tok.back() != ']')
        return false;
    std::vector<int64_t> coords;
    std::stringstream ss(tok.substr(1, tok.size() - 2));
    std::string part;
    while (std::getline(ss, part, ',')) {
        int64_t v;
        if (!parseInt(part, v))
            return false;
        coords.push_back(v);
    }
    if (coords.empty())
        return false;
    out = IVec(std::move(coords));
    return true;
}

/** Parse "lo..hi" (nest_parser bounds syntax). */
bool
parseRange(const std::string &tok, int64_t &lo, int64_t &hi)
{
    auto dots = tok.find("..");
    if (dots == std::string::npos)
        return false;
    return parseInt(tok.substr(0, dots), lo) &&
           parseInt(tok.substr(dots + 2), hi);
}

using SolveFn = std::function<ServiceAnswer(const Stencil &)>;

/**
 * Shared response formatter: the service path and the direct
 * reference path must agree byte-for-byte, including on errors, so
 * both route through this one function.
 */
std::string
answerRequest(const Request &request, const SolveFn &solve)
{
    std::ostringstream oss;
    if (!request.error.empty()) {
        oss << "error " << request.index << " " << request.error;
        return oss.str();
    }
    try {
        Stencil stencil(request.deps);
        ServiceAnswer answer = solve(stencil);
        oss << "answer " << request.index << " " << answer.str();
    } catch (const UovUserError &e) {
        oss.str("");
        oss << "error " << request.index << " " << e.what();
    } catch (const UovOverflowError &e) {
        oss.str("");
        oss << "error " << request.index << " " << e.what();
    }
    return oss.str();
}

} // namespace

Request
parseRequestLine(const std::string &line, size_t index)
{
    Request r;
    r.index = index;
    auto fail = [&](const std::string &msg) {
        r.error = msg;
        return r;
    };

    std::stringstream ss(line);
    std::string tok;
    ss >> tok;
    if (tok != "query")
        return fail("expected 'query', got '" + tok + "'");

    ss >> tok;
    if (tok == "shortest") {
        r.objective = SearchObjective::ShortestVector;
    } else if (tok == "storage") {
        r.objective = SearchObjective::BoundedStorage;
    } else {
        return fail("bad objective '" + tok +
                    "', expected shortest|storage");
    }

    if (!(ss >> tok))
        return fail("missing 'deps'");

    if (tok == "bounds") {
        std::vector<int64_t> los, his;
        while (ss >> tok && tok != "deps") {
            int64_t lo, hi;
            if (!parseRange(tok, lo, hi))
                return fail("bad range '" + tok +
                            "', expected lo..hi");
            if (lo > hi)
                return fail("empty range '" + tok + "'");
            los.push_back(lo);
            his.push_back(hi);
        }
        if (los.empty())
            return fail("'bounds' needs at least one range");
        if (tok != "deps")
            return fail("missing 'deps'");
        r.isg_lo = IVec(std::move(los));
        r.isg_hi = IVec(std::move(his));
    }

    if (tok != "deps")
        return fail("expected 'bounds' or 'deps', got '" + tok + "'");

    while (ss >> tok) {
        IVec v;
        if (!parseVec(tok, v))
            return fail("bad dependence '" + tok +
                        "', expected [o1,o2,...]");
        r.deps.push_back(std::move(v));
    }
    if (r.deps.empty())
        return fail("'deps' needs at least one vector");

    if (r.objective == SearchObjective::BoundedStorage && !r.isg_lo)
        return fail("storage query needs 'bounds'");
    if (r.objective == SearchObjective::ShortestVector && r.isg_lo)
        return fail("'bounds' is only valid for storage queries");
    if (r.isg_lo && r.isg_lo->dim() != r.deps[0].dim())
        return fail("bounds rank " +
                    std::to_string(r.isg_lo->dim()) +
                    " does not match dependence rank " +
                    std::to_string(r.deps[0].dim()));
    return r;
}

std::vector<Request>
parseRequests(std::istream &in)
{
    std::vector<Request> requests;
    std::string raw;
    while (std::getline(in, raw)) {
        std::string line = cleanLine(raw);
        if (line.empty())
            continue;
        requests.push_back(parseRequestLine(line, requests.size() + 1));
    }
    return requests;
}

std::string
runRequest(QueryService &service, const Request &request)
{
    return answerRequest(request, [&](const Stencil &s) {
        return service.query(s, request.objective, request.isg_lo,
                             request.isg_hi);
    });
}

std::vector<std::string>
runBatch(QueryService &service, const std::vector<Request> &requests,
         ThreadPool &pool)
{
    std::vector<std::string> responses(requests.size());
    Gauge &depth = service.metrics().gauge("service.queue_depth");
    std::vector<std::future<void>> futures;
    futures.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        depth.add(1);
        futures.push_back(pool.submit([&service, &requests, &responses,
                                       &depth, i] {
            try {
                responses[i] = runRequest(service, requests[i]);
            } catch (...) {
                depth.sub(1);
                throw;
            }
            depth.sub(1);
        }));
    }
    // Drain every future before unwinding (tasks capture locals),
    // then surface the first internal error.
    std::exception_ptr first;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
    return responses;
}

std::vector<std::string>
runBatchDirect(const std::vector<Request> &requests, uint64_t max_visits)
{
    std::vector<std::string> responses;
    responses.reserve(requests.size());
    for (const Request &r : requests) {
        responses.push_back(answerRequest(r, [&](const Stencil &s) {
            return solveDirect(s, r.objective, r.isg_lo, r.isg_hi,
                               max_visits);
        }));
    }
    return responses;
}

} // namespace service
} // namespace uov
