#include "sim/tlb.h"

#include "support/error.h"

namespace uov {

Tlb::Tlb(int64_t entries, int64_t page_bytes) : _entries(entries)
{
    UOV_REQUIRE(entries >= 1, "TLB needs at least one entry");
    UOV_REQUIRE(page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0,
                "page size must be a power of two");
    _page_shift = 0;
    while ((int64_t{1} << _page_shift) < page_bytes)
        ++_page_shift;
}

bool
Tlb::access(uint64_t addr)
{
    uint64_t page = addr >> _page_shift;
    auto it = _where.find(page);
    if (it != _where.end()) {
        _order.splice(_order.begin(), _order, it->second);
        ++_hits;
        return true;
    }
    ++_misses;
    if (static_cast<int64_t>(_order.size()) >= _entries) {
        uint64_t victim = _order.back();
        _order.pop_back();
        _where.erase(victim);
    }
    _order.push_front(page);
    _where[page] = _order.begin();
    return false;
}

double
Tlb::missRate() const
{
    uint64_t total = _hits + _misses;
    return total == 0 ? 0.0
                      : static_cast<double>(_misses) /
                            static_cast<double>(total);
}

void
Tlb::reset()
{
    _order.clear();
    _where.clear();
    _hits = _misses = 0;
}

} // namespace uov
