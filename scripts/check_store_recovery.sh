#!/usr/bin/env sh
# Kill-9-mid-write recovery drill for the persistent result store.
#
# Repeatedly hard-kills a uovd run partway through solving a query
# batch into --store, then performs one clean run against the battered
# store file and asserts:
#
#   1. responses are byte-identical to a storeless reference run
#      (recovery never changes an answer), and
#   2. the final run served at least one answer from disk
#      (service.store.hits > 0 -- the kills really persisted work).
#
# Torn tails left by the kills are truncated at the next open (see
# src/service/store.h); this script is the end-to-end check that the
# repair discipline holds under real SIGKILL, not just the in-process
# fail points.
#
# Usage: scripts/check_store_recovery.sh [build-dir] [kill-rounds]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
rounds=${2:-3}
uovd="$build_dir/src/driver/uovd"

workdir=$(mktemp -d "${TMPDIR:-/tmp}/uov-store-recovery.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

queries="$workdir/queries.txt"
store="$workdir/results.store"

# A batch big enough that a SIGKILL a few milliseconds in lands while
# appends are still streaming: widening shortest/storage pairs.
: > "$queries"
k=1
while [ "$k" -le 40 ]; do
    echo "query shortest deps [1,0] [$k,1] [1,-$k]" >> "$queries"
    echo "query storage bounds 0..15 0..63 deps [1,0] [$k,1]" \
        >> "$queries"
    k=$((k + 1))
done

echo "== storeless reference run"
"$uovd" --input "$queries" --output "$workdir/reference.out"

i=1
while [ "$i" -le "$rounds" ]; do
    echo "== kill round $i/$rounds"
    "$uovd" --input "$queries" --store "$store" \
        --output /dev/null 2> "$workdir/kill$i.log" &
    pid=$!
    # Long enough to open the store and persist some answers, short
    # enough to die mid-batch.
    sleep 0.2
    kill -9 "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true
    if [ -f "$store" ]; then
        echo "   store is $(wc -c < "$store") bytes after the kill"
    else
        echo "   store not created yet (killed before open)"
    fi
    i=$((i + 1))
done

echo "== clean run against the battered store"
"$uovd" --input "$queries" --store "$store" \
    --output "$workdir/final.out" \
    --metrics-json "$workdir/final.metrics.json" \
    2> "$workdir/final.log"
cat "$workdir/final.log"

if ! cmp -s "$workdir/reference.out" "$workdir/final.out"; then
    echo "FAIL: recovered-store responses differ from the storeless" \
         "reference" >&2
    diff "$workdir/reference.out" "$workdir/final.out" >&2 || true
    exit 1
fi
echo "   responses byte-identical to the storeless reference"

python3 - "$workdir/final.metrics.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    metrics = json.load(f)
counters = metrics["counters"]
hits = counters.get("service.store.hits", 0)
loaded = counters.get("service.store.loaded", 0)
print(f"   store hits: {hits}, records preloaded/loaded: {loaded}")
if hits <= 0 and loaded <= 0:
    sys.exit("FAIL: final run never touched persisted answers -- the "
             "kill rounds persisted nothing (raise the sleep?)")
EOF

echo "store recovery drill: OK"
