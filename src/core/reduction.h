/**
 * @file
 * The paper's NP-completeness reduction (Section 3.1 theorem):
 * PARTITION reduces to UOV membership.
 *
 * For a sequence a_0 ... a_{n-1} of positive integers with even sum
 * 2h, the constructed stencil contains, for each i,
 *     r_i = (0,   (n+1)^i + (n+1)^n)
 *     s_i = (a_i, (n+1)^i + (n+1)^n)
 * and the query vector is
 *     w = (h, n*(n+1)^n + ((n+1)^n - 1)/n).
 *
 * The magic second coordinates force any cone decomposition of w to
 * pick exactly one of {r_i, s_i} for every i; the chosen s_i's then
 * sum their a_i's to h, i.e. solve PARTITION.  Conversely a partition
 * S yields the decomposition choosing s_i for i in S -- and because the
 * complement of S is also a solution, every stencil vector appears in
 * some decomposition, which is exactly UOV membership.
 */

#ifndef UOV_CORE_REDUCTION_H
#define UOV_CORE_REDUCTION_H

#include <cstdint>
#include <optional>
#include <vector>

#include "core/stencil.h"
#include "geometry/ivec.h"

namespace uov {

/** An instance of PARTITION: positive integers with an even sum. */
struct PartitionInstance
{
    std::vector<int64_t> values;

    /** Half the total (the target subset sum). @pre total is even */
    int64_t half() const;

    /** True iff construction preconditions hold. */
    bool valid() const;
};

/** The constructed UOV-membership instance. */
struct UovMembershipInstance
{
    Stencil stencil;
    IVec query; ///< the w whose UOV membership encodes PARTITION
};

/**
 * Build the reduction instance.
 * @pre instance.valid() and instance.values.size() <= 12 (so the magic
 *      coordinates fit in int64 and the stencil fits 32 vectors)
 */
UovMembershipInstance buildReduction(const PartitionInstance &instance);

/**
 * Decide PARTITION by brute force (2^n subsets); returns a solving
 * subset as a bitmask, or nullopt.  Reference oracle for tests.
 */
std::optional<uint64_t> solvePartitionBruteForce(
    const PartitionInstance &instance);

} // namespace uov

#endif // UOV_CORE_REDUCTION_H
