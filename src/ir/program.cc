#include "ir/program.h"

#include <sstream>

#include "support/error.h"

namespace uov {

IVec
Access::elementAt(const IVec &q) const
{
    return coef * q + offset;
}

std::string
Access::str() const
{
    std::ostringstream oss;
    oss << array << "[M*q + " << offset << "]";
    return oss.str();
}

Access
uniformAccess(std::string array, IVec offset)
{
    size_t d = offset.dim();
    Access a;
    a.array = std::move(array);
    a.coef = IMatrix::identity(d);
    a.offset = std::move(offset);
    return a;
}

LoopNest::LoopNest(std::string name, IVec lo, IVec hi)
    : _name(std::move(name)), _lo(std::move(lo)), _hi(std::move(hi))
{
    UOV_REQUIRE(_lo.dim() == _hi.dim() && _lo.dim() >= 1,
                "loop nest bounds must agree and be non-empty");
    for (size_t c = 0; c < _lo.dim(); ++c)
        UOV_REQUIRE(_lo[c] <= _hi[c],
                    "loop " << c << " has empty range [" << _lo[c] << ", "
                            << _hi[c] << "]");
}

Polyhedron
LoopNest::domain() const
{
    return Polyhedron::box(_lo, _hi);
}

int64_t
LoopNest::tripCount() const
{
    int64_t n = 1;
    for (size_t c = 0; c < depth(); ++c)
        n *= _hi[c] - _lo[c] + 1;
    return n;
}

void
LoopNest::addStatement(Statement stmt)
{
    auto check_access = [&](const Access &a) {
        UOV_REQUIRE(a.coef.cols() == depth(),
                    "access " << a.str() << " has " << a.coef.cols()
                              << " columns, nest depth is " << depth());
        UOV_REQUIRE(a.coef.rows() == a.offset.dim(),
                    "access " << a.str() << " offset rank mismatch");
    };
    check_access(stmt.write);
    for (const auto &r : stmt.reads)
        check_access(r);
    UOV_REQUIRE(writerOf(stmt.write.array) == npos,
                "array " << stmt.write.array
                         << " already has a writer; the paper's method "
                            "treats one assignment per array");
    _stmts.push_back(std::move(stmt));
}

const Statement &
LoopNest::statement(size_t i) const
{
    UOV_REQUIRE(i < _stmts.size(), "statement index out of range");
    return _stmts[i];
}

size_t
LoopNest::writerOf(const std::string &array) const
{
    for (size_t i = 0; i < _stmts.size(); ++i)
        if (_stmts[i].write.array == array)
            return i;
    return npos;
}

std::string
LoopNest::str() const
{
    std::ostringstream oss;
    oss << "nest " << _name << " over [" << _lo << ", " << _hi << "], "
        << _stmts.size() << " statement(s)";
    return oss.str();
}

namespace nests {

LoopNest
simpleExample(int64_t n, int64_t m)
{
    LoopNest nest("simple", IVec{1, 1}, IVec{n, m});
    Statement s;
    s.name = "A";
    s.write = uniformAccess("A", IVec{0, 0});
    s.reads = {uniformAccess("A", IVec{-1, 0}),
               uniformAccess("A", IVec{0, -1}),
               uniformAccess("A", IVec{-1, -1})};
    nest.addStatement(std::move(s));
    return nest;
}

LoopNest
fivePointStencil(int64_t t_steps, int64_t len)
{
    LoopNest nest("stencil5", IVec{1, 0}, IVec{t_steps, len - 1});
    Statement s;
    s.name = "B";
    s.write = uniformAccess("B", IVec{0, 0});
    s.reads = {uniformAccess("B", IVec{-1, -2}),
               uniformAccess("B", IVec{-1, -1}),
               uniformAccess("B", IVec{-1, 0}),
               uniformAccess("B", IVec{-1, 1}),
               uniformAccess("B", IVec{-1, 2})};
    nest.addStatement(std::move(s));
    return nest;
}

LoopNest
proteinMatching(int64_t n0, int64_t n1)
{
    LoopNest nest("psm", IVec{1, 1}, IVec{n0, n1});
    Statement s;
    s.name = "D";
    s.write = uniformAccess("D", IVec{0, 0});
    s.reads = {uniformAccess("D", IVec{-1, 0}),
               uniformAccess("D", IVec{0, -1}),
               uniformAccess("D", IVec{-1, -1})};
    nest.addStatement(std::move(s));
    return nest;
}

} // namespace nests

} // namespace uov
