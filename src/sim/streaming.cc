#include "sim/streaming.h"

#include "support/error.h"

namespace uov {

MultiMachineSim::MultiMachineSim(
    const std::vector<MachineConfig> &configs)
{
    UOV_REQUIRE(!configs.empty(),
                "streaming simulation needs at least one machine");
    _systems.reserve(configs.size());
    for (const MachineConfig &cfg : configs)
        _systems.push_back(std::make_unique<MemorySystem>(cfg));
}

MemorySystem &
MultiMachineSim::system(size_t i)
{
    UOV_REQUIRE(i < _systems.size(),
                "machine index " << i << " out of range");
    return *_systems[i];
}

const MemorySystem &
MultiMachineSim::system(size_t i) const
{
    UOV_REQUIRE(i < _systems.size(),
                "machine index " << i << " out of range");
    return *_systems[i];
}

StreamingSim
MultiMachineSim::policy()
{
    StreamingSim p;
    p.systems.reserve(_systems.size());
    for (auto &ms : _systems)
        p.systems.push_back(ms.get());
    return p;
}

uint64_t
MultiMachineSim::eventsProcessed() const
{
    uint64_t n = 0;
    for (const auto &ms : _systems)
        n += ms->accesses() + ms->branches();
    return n;
}

void
MultiMachineSim::reset()
{
    for (auto &ms : _systems)
        ms->reset();
}

} // namespace uov
