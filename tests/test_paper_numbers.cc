/**
 * @file
 * Integration test pinning every number the paper prints, end to end
 * through the library (the bench binaries display these; this test
 * makes them regression-checked):
 *
 *   Figure 1: nm / n+m+1 / m+2 storage, UOV (1,1), SM=(-1,1).q+n
 *   Figure 3: ov(3,1) -> 16 cells, ov(3,0) -> 27 cells
 *   Figure 5: UOV (2,0), SM interleaved (0,2).q + (q_t mod 2)
 *   Figure 6: |mv.xp1 - mv.xp2| + 1 = n+m+1
 *   Table 1:  TL / 2L / L+3
 *   Table 2:  n0n1+n0+n1 / 2n0+2n1+1 / 2n0+3
 *   Theorem:  PARTITION <-> UOV membership
 */

#include <gtest/gtest.h>

#include "analysis/pipeline.h"
#include "core/reduction.h"
#include "core/search.h"
#include "core/storage_count.h"
#include "core/uov.h"
#include "kernels/psm.h"
#include "kernels/simple.h"
#include "kernels/stencil5.h"
#include "mapping/storage_mapping.h"

namespace uov {
namespace {

TEST(PaperNumbers, Figure1)
{
    int64_t n = 512, m = 384;
    EXPECT_EQ(simpleStorage(SimpleVariant::Natural, n, m), n * m);
    EXPECT_EQ(simpleStorage(SimpleVariant::OvMapped, n, m), n + m + 1);
    EXPECT_EQ(simpleStorage(SimpleVariant::StorageOptimized, n, m),
              m + 2);

    // UOV and mapping, derived not hard-coded.
    MappingPlan plan = planStorageMapping(nests::simpleExample(n, m), 0);
    EXPECT_EQ(plan.search.best_uov, (IVec{1, 1}));

    // Over the boundary-inclusive ISG the mapping is the paper's
    // A[n-i+j]: (-1,1).q + n, with n+m+1 cells.
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{n, m});
    StorageMapping sm = StorageMapping::create(IVec{1, 1}, isg);
    EXPECT_EQ(sm.cellCount(), n + m + 1);
    EXPECT_EQ(sm(IVec{3, 5}), n - 3 + 5);

    // And all three code versions agree at runtime.
    VirtualArena arena;
    NativeMem mem;
    int64_t a = runSimple(SimpleVariant::Natural, 40, 30, mem, arena);
    EXPECT_EQ(runSimple(SimpleVariant::OvMapped, 40, 30, mem, arena),
              a);
    EXPECT_EQ(
        runSimple(SimpleVariant::StorageOptimized, 40, 30, mem, arena),
        a);
}

TEST(PaperNumbers, Figure3)
{
    Polyhedron isg = Polyhedron::fromVertices2D(
        {IVec{1, 1}, IVec{1, 6}, IVec{10, 4}, IVec{10, 9}});
    EXPECT_EQ(storageCellCount(IVec{3, 1}, isg), 16);
    EXPECT_EQ(storageCellCount(IVec{3, 0}, isg), 27);
}

TEST(PaperNumbers, Figure5)
{
    SearchResult r = BranchBoundSearch(stencils::fivePoint(),
                                       SearchObjective::ShortestVector)
                         .run();
    EXPECT_EQ(r.best_uov, (IVec{2, 0}));

    int64_t t_max = 20, len = 63;
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{t_max, len});
    StorageMapping inter = StorageMapping::create(
        IVec{2, 0}, isg, ModLayout::Interleaved);
    StorageMapping block =
        StorageMapping::create(IVec{2, 0}, isg, ModLayout::Blocked);
    for (int64_t t = 0; t <= 5; ++t) {
        for (int64_t i = 0; i <= 10; ++i) {
            EXPECT_EQ(inter(IVec{t, i}), 2 * i + (t % 2));
            EXPECT_EQ(block(IVec{t, i}), i + (t % 2) * (len + 1));
        }
    }
}

TEST(PaperNumbers, Figure6)
{
    for (auto [n, m] :
         {std::pair<int64_t, int64_t>{8, 5}, {100, 1}, {64, 64}}) {
        Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{n, m});
        EXPECT_EQ(storageCellCount(IVec{1, 1}, isg), n + m + 1);
    }
}

TEST(PaperNumbers, Table1)
{
    int64_t len = 100000, steps = 1000;
    EXPECT_EQ(stencil5TemporaryStorage(Stencil5Variant::Natural, len,
                                       steps),
              steps * len);
    EXPECT_EQ(stencil5TemporaryStorage(Stencil5Variant::Ov, len, steps),
              2 * len);
    EXPECT_EQ(stencil5TemporaryStorage(Stencil5Variant::StorageOptimized,
                                       len, steps),
              len + 3);
}

TEST(PaperNumbers, Table2)
{
    int64_t n0 = 2000, n1 = 500;
    EXPECT_EQ(psmTemporaryStorage(PsmVariant::Natural, n0, n1),
              n0 * n1 + n0 + n1);
    EXPECT_EQ(psmTemporaryStorage(PsmVariant::Ov, n0, n1),
              2 * n0 + 2 * n1 + 1);
    EXPECT_EQ(psmTemporaryStorage(PsmVariant::StorageOptimized, n0, n1),
              2 * n0 + 3);
}

TEST(PaperNumbers, TheoremReduction)
{
    // The two canonical directions of the NP-completeness theorem.
    {
        UovMembershipInstance yes =
            buildReduction(PartitionInstance{{2, 3, 5}});
        EXPECT_TRUE(UovOracle(yes.stencil).isUov(yes.query));
    }
    {
        UovMembershipInstance no =
            buildReduction(PartitionInstance{{1, 1, 4}});
        EXPECT_FALSE(UovOracle(no.stencil).isUov(no.query));
    }
}

TEST(PaperNumbers, InitialUovsFromSection3)
{
    // ov_o = sum of stencil vectors, always legal.
    EXPECT_EQ(stencils::simpleExample().initialUov(), (IVec{2, 2}));
    EXPECT_EQ(stencils::fivePoint().initialUov(), (IVec{5, 0}));
    for (const Stencil &s :
         {stencils::simpleExample(), stencils::fivePoint(),
          stencils::proteinMatching(), stencils::heat3D()}) {
        EXPECT_TRUE(UovOracle(s).isUov(s.initialUov())) << s.str();
    }
}

} // namespace
} // namespace uov
