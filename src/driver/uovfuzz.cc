/**
 * @file
 * uovfuzz: the differential fuzzing driver.
 *
 * Cross-checks every oracle in the system against independent
 * re-implementations on randomly generated (seeded, reproducible)
 * stencils, nests, ISG boxes, and legal schedules.  Failures are
 * shrunk to minimal repros and printed as paste-able nest text.
 *
 *   $ ./uovfuzz --iters 500 --seed 1            # the CI smoke run
 *   $ ./uovfuzz --iters 100000 --seed $RANDOM   # a local soak
 *   $ ./uovfuzz --oracle mapping --iters 2000   # one oracle family
 *   $ ./uovfuzz --replay 1234567                # one exact case
 *   $ ./uovfuzz --corpus examples/corpus        # replay the corpus
 *
 * Exit status: 0 when every cross-check agreed, 1 on discrepancies,
 * 2 on usage errors.
 */

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"
#include "support/error.h"
#include "support/version.h"

using namespace uov;
using namespace uov::fuzz;

namespace {

void
usage()
{
    std::cout <<
        "uovfuzz " << buildVersion()
              << " -- differential fuzzing driver\n"
        "usage: uovfuzz [options]\n"
        "  --seed N        master seed for the random sweep "
        "(default 1)\n"
        "  --iters N       random cases to run (default 100)\n"
        "  --oracle NAME   membership|search|mapping|streaming|"
        "service|fault|codegen|tune|durability\n"
        "                  (default: all)\n"
        "  --shrink        minimize failing cases (default)\n"
        "  --no-shrink     report failures unminimized\n"
        "  --replay SEED   regenerate one case from its seed and run\n"
        "                  the chosen oracle(s) on it\n"
        "  --corpus DIR    replay every *.nest file in DIR first\n"
        "  --corpus-file F replay one nest file\n"
        "  --quiet         suppress progress output\n";
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opt;
    opt.log = &std::cerr;
    std::vector<uint64_t> replays;

    auto next_arg = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc) {
            std::cerr << "uovfuzz: " << flag << " needs a value\n";
            exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        try {
            if (a == "--help" || a == "-h") {
                usage();
                return 0;
            } else if (a == "--seed") {
                opt.seed = std::stoull(next_arg(i, "--seed"));
            } else if (a == "--iters") {
                opt.iters = std::stoull(next_arg(i, "--iters"));
            } else if (a == "--oracle") {
                std::string name = next_arg(i, "--oracle");
                opt.only = parseOracleName(name);
                if (!opt.only && name != "all") {
                    std::cerr << "uovfuzz: unknown oracle '" << name
                              << "'\n";
                    return 2;
                }
            } else if (a == "--shrink") {
                opt.shrink = true;
            } else if (a == "--no-shrink") {
                opt.shrink = false;
            } else if (a == "--replay") {
                replays.push_back(
                    std::stoull(next_arg(i, "--replay")));
            } else if (a == "--corpus") {
                std::string dir = next_arg(i, "--corpus");
                std::vector<std::string> files;
                for (const auto &e :
                     std::filesystem::directory_iterator(dir)) {
                    if (e.path().extension() == ".nest")
                        files.push_back(e.path().string());
                }
                std::sort(files.begin(), files.end());
                if (files.empty()) {
                    std::cerr << "uovfuzz: no *.nest files in '"
                              << dir << "'\n";
                    return 2;
                }
                opt.corpus_files.insert(opt.corpus_files.end(),
                                        files.begin(), files.end());
            } else if (a == "--corpus-file") {
                opt.corpus_files.push_back(
                    next_arg(i, "--corpus-file"));
            } else if (a == "--quiet") {
                opt.log = nullptr;
            } else {
                std::cerr << "uovfuzz: unknown option '" << a << "'\n";
                usage();
                return 2;
            }
        } catch (const std::logic_error &) {
            std::cerr << "uovfuzz: bad numeric value for " << a
                      << "\n";
            return 2;
        } catch (const std::filesystem::filesystem_error &e) {
            std::cerr << "uovfuzz: " << e.what() << "\n";
            return 2;
        }
    }

    // --replay: run the selected oracle(s) on exact regenerated
    // cases instead of a sweep.
    if (!replays.empty()) {
        int bad = 0;
        for (uint64_t seed : replays) {
            FuzzCase c = makeCase(seed, opt.gen);
            std::cout << "case " << c.str() << "\n";
            std::vector<OracleKind> kinds;
            if (opt.only) {
                kinds.push_back(*opt.only);
            } else {
                kinds = {OracleKind::Membership, OracleKind::Search,
                         OracleKind::Mapping, OracleKind::Streaming,
                         OracleKind::Service, OracleKind::Fault,
                         OracleKind::Codegen};
            }
            for (OracleKind k : kinds) {
                auto v = runOracle(k, c);
                std::cout << "  " << oracleName(k) << ": "
                          << (v ? *v : "ok") << "\n";
                if (v)
                    ++bad;
            }
        }
        return bad ? 1 : 0;
    }

    FuzzReport report = runFuzzer(opt);
    std::cout << "uovfuzz: " << report.str() << "\n";
    for (const auto &f : report.failures)
        std::cout << f.repro;
    return report.ok() ? 0 : 1;
}
