// Prometheus text-exposition tests: name sanitization, label value
// escaping, histogram edge cases (empty, +Inf overflow bucket), the
// golden-document pin, and the scrape-consistency contract under
// concurrent increments (a rendered histogram is never torn: the
// +Inf bucket always equals _count, and _sum always covers the
// rendered observations).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "support/metrics.h"
#include "telemetry/prometheus.h"

using namespace uov;
using namespace uov::telemetry;

TEST(PrometheusNames, DotsBecomeUnderscores)
{
    EXPECT_EQ(sanitizeMetricName("service.cache.hits"),
              "service_cache_hits");
    EXPECT_EQ(sanitizeMetricName("already_legal:name"),
              "already_legal:name");
}

TEST(PrometheusNames, IllegalCharactersBecomeUnderscores)
{
    EXPECT_EQ(sanitizeMetricName("a-b c/d"), "a_b_c_d");
    EXPECT_EQ(sanitizeMetricName("weird!@#"), "weird___");
}

TEST(PrometheusNames, LeadingDigitGainsPrefix)
{
    EXPECT_EQ(sanitizeMetricName("9lives"), "_9lives");
    EXPECT_EQ(sanitizeMetricName("0.count"), "_0_count");
}

TEST(PrometheusNames, EmptyNameBecomesUnderscore)
{
    EXPECT_EQ(sanitizeMetricName(""), "_");
}

TEST(PrometheusLabels, EscapesBackslashQuoteNewline)
{
    EXPECT_EQ(escapeLabelValue("plain"), "plain");
    EXPECT_EQ(escapeLabelValue("a\"b"), "a\\\"b");
    EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeLabelValue("a\nb"), "a\\nb");
    EXPECT_EQ(escapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PrometheusRender, CountersGetTotalSuffixAndType)
{
    MetricsRegistry registry;
    registry.counter("service.requests").inc(7);
    std::string doc = renderPrometheus(registry);
    EXPECT_NE(doc.find("# TYPE uov_service_requests_total counter\n"),
              std::string::npos);
    EXPECT_NE(doc.find("uov_service_requests_total 7\n"),
              std::string::npos);
}

TEST(PrometheusRender, GaugesRenderSignedValues)
{
    MetricsRegistry registry;
    registry.gauge("service.queue_depth").set(-3);
    std::string doc = renderPrometheus(registry);
    EXPECT_NE(doc.find("# TYPE uov_service_queue_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(doc.find("uov_service_queue_depth -3\n"),
              std::string::npos);
}

TEST(PrometheusRender, EmptyHistogramStillRendersInfSumCount)
{
    MetricsRegistry registry;
    registry.histogram("service.latency_us");
    std::string doc = renderPrometheus(registry);
    EXPECT_NE(
        doc.find("uov_service_latency_us_bucket{le=\"+Inf\"} 0\n"),
        std::string::npos);
    EXPECT_NE(doc.find("uov_service_latency_us_sum 0\n"),
              std::string::npos);
    EXPECT_NE(doc.find("uov_service_latency_us_count 0\n"),
              std::string::npos);
}

TEST(PrometheusRender, HugeObservationLandsInOverflowBucket)
{
    MetricsRegistry registry;
    Histogram &h = registry.histogram("big");
    // Larger than any finite bit-width bucket bound: only the last
    // bucket (rendered cumulatively, then +Inf) can hold it.
    h.observe(~uint64_t{0});
    h.observe(1);
    std::string doc = renderPrometheus(registry);
    EXPECT_NE(doc.find("uov_big_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos);
    EXPECT_NE(doc.find("uov_big_count 2\n"), std::string::npos);

    // The cumulative series never decreases and ends at the count.
    Histogram::Snapshot snap = h.snapshot();
    uint64_t cumulative = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b)
        cumulative += snap.buckets[b];
    EXPECT_EQ(cumulative, snap.count);
}

TEST(PrometheusRender, BucketSeriesIsCumulative)
{
    MetricsRegistry registry;
    Histogram &h = registry.histogram("lat");
    h.observe(1); // bucket 1 (le 1)
    h.observe(2); // bucket 2 (le 3)
    h.observe(3); // bucket 2 (le 3)
    std::string doc = renderPrometheus(registry);
    EXPECT_NE(doc.find("uov_lat_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(doc.find("uov_lat_bucket{le=\"3\"} 3\n"),
              std::string::npos);
    EXPECT_NE(doc.find("uov_lat_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
}

// The golden document: pins the full exposition for a representative
// registry.  Regenerate by updating tests/data/telemetry/metrics.golden
// to match a reviewed rendering -- the pin is the review.
TEST(PrometheusRender, MatchesGoldenDocument)
{
    MetricsRegistry registry;
    registry.counter("service.requests").inc(42);
    registry.counter("9starts.with-digit").inc(1);
    registry.gauge("service.queue_depth").set(5);
    Histogram &h = registry.histogram("service.latency_us");
    h.observe(0);
    h.observe(5);
    h.observe(5);
    h.observe(100);

    std::string rendered = renderPrometheus(registry);

    std::ifstream golden(std::string(UOV_TELEMETRY_GOLDEN_DIR) +
                         "/metrics.golden");
    ASSERT_TRUE(golden.is_open())
        << "missing tests/data/telemetry/metrics.golden";
    std::stringstream expected;
    expected << golden.rdbuf();
    EXPECT_EQ(rendered, expected.str());
}

TEST(PrometheusRender, SnapshotOrderIsDeterministic)
{
    MetricsRegistry registry;
    registry.counter("b.second").inc(2);
    registry.counter("a.first").inc(1);
    registry.gauge("z.gauge").set(1);
    std::string doc1 = renderPrometheus(registry);
    std::string doc2 = renderPrometheus(registry);
    EXPECT_EQ(doc1, doc2);
    // Counters render sorted by name regardless of creation order.
    EXPECT_LT(doc1.find("uov_a_first_total"),
              doc1.find("uov_b_second_total"));
}

// The satellite contract: a scraper racing live observe() calls never
// sees a torn histogram.  All observations are the same value v, so
// any consistent rendering satisfies sum == count * v exactly, the
// +Inf bucket equals count, and the cumulative buckets sum to count.
TEST(PrometheusRender, ConcurrentScrapeSeesConsistentHistogram)
{
    MetricsRegistry registry;
    Histogram &h = registry.histogram("race.lat");
    constexpr uint64_t kValue = 9; // bucket 4, le 15
    constexpr int kWriters = 4;
    constexpr uint64_t kPerWriter = 20'000;

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&] {
            for (uint64_t i = 0; i < kPerWriter; ++i)
                h.observe(kValue);
        });

    uint64_t scrapes = 0;
    while (!stop.load(std::memory_order_relaxed)) {
        Histogram::Snapshot snap = h.snapshot();
        uint64_t bucket_sum = 0;
        for (size_t b = 0; b < Histogram::kBuckets; ++b)
            bucket_sum += snap.buckets[b];
        ASSERT_EQ(bucket_sum, snap.count) << "torn bucket/count";
        ASSERT_GE(snap.sum, snap.count * kValue)
            << "rendered sum does not cover rendered count";
        ++scrapes;
        if (snap.count == kWriters * kPerWriter)
            stop.store(true, std::memory_order_relaxed);
    }
    for (auto &t : writers)
        t.join();

    Histogram::Snapshot final_snap = h.snapshot();
    EXPECT_EQ(final_snap.count, kWriters * kPerWriter);
    EXPECT_EQ(final_snap.sum, kWriters * kPerWriter * kValue);
    EXPECT_GT(scrapes, 0u);
}

TEST(BucketPercentile, InterpolatesWithinBuckets)
{
    uint64_t buckets[Histogram::kBuckets] = {};
    buckets[4] = 100; // values in (7, 15]
    EXPECT_EQ(bucketPercentile(buckets, Histogram::kBuckets, 100, 0.0),
              8u);
    EXPECT_EQ(bucketPercentile(buckets, Histogram::kBuckets, 100, 1.0),
              15u);
    uint64_t p50 =
        bucketPercentile(buckets, Histogram::kBuckets, 100, 0.5);
    EXPECT_GE(p50, 8u);
    EXPECT_LE(p50, 15u);
}

TEST(BucketPercentile, EmptyHistogramIsZero)
{
    uint64_t buckets[Histogram::kBuckets] = {};
    EXPECT_EQ(bucketPercentile(buckets, Histogram::kBuckets, 0, 0.99),
              0u);
}
