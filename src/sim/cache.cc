#include "sim/cache.h"

#include <bit>

#include "support/error.h"

namespace uov {

namespace {

bool
isPowerOfTwo(int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

unsigned
log2OfPow2(int64_t v)
{
    return static_cast<unsigned>(
        std::countr_zero(static_cast<uint64_t>(v)));
}

} // namespace

int64_t
CacheConfig::sets() const
{
    return size_bytes / (line_bytes * associativity);
}

void
CacheConfig::validate() const
{
    UOV_REQUIRE(isPowerOfTwo(line_bytes), name << ": line size must be a "
                                                  "power of two");
    UOV_REQUIRE(associativity >= 1, name << ": associativity >= 1");
    UOV_REQUIRE(size_bytes % (line_bytes * associativity) == 0,
                name << ": size must be sets*ways*line");
    UOV_REQUIRE(isPowerOfTwo(sets()), name << ": set count must be a "
                                              "power of two");
}

Cache::Cache(CacheConfig config) : _config(std::move(config))
{
    _config.validate();
    _sets = _config.sets();
    _assoc = _config.associativity;
    _set_mask = static_cast<uint64_t>(_sets - 1);
    _line_shift = log2OfPow2(_config.line_bytes);
    _set_shift = log2OfPow2(_sets);
    _ways.assign(static_cast<size_t>(_sets * _assoc), Way{});
}

bool
Cache::access(uint64_t addr, bool is_write)
{
    uint64_t line = addr >> _line_shift;
    auto set = static_cast<size_t>(line & _set_mask);
    uint64_t tag = line >> _set_shift;

    Way *base = &_ways[set * static_cast<size_t>(_assoc)];
    ++_stamp;

    // One pass finds both a hit and the fill/eviction victim.  The
    // victim scan is a branchless running minimum over lru stamps:
    // stamps start at 1 and are only written on hit/fill, so invalid
    // ways keep lru == 0 and the first invalid way wins exactly as a
    // dedicated fill-an-invalid-way scan would.
    Way *victim = base;
    uint64_t victim_lru = base->lru;
    for (int64_t w = 0; w < _assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lru = _stamp;
            way.dirty = way.dirty || is_write;
            ++_hits;
            return true;
        }
        bool older = way.lru < victim_lru;
        victim = older ? &way : victim;
        victim_lru = older ? way.lru : victim_lru;
    }

    if (victim->valid && victim->dirty)
        ++_writebacks;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = _stamp;
    victim->dirty = is_write;
    ++_misses;
    return false;
}

double
Cache::missRate() const
{
    uint64_t total = accesses();
    return total == 0 ? 0.0
                      : static_cast<double>(_misses) /
                            static_cast<double>(total);
}

void
Cache::reset()
{
    for (auto &w : _ways)
        w = Way{};
    _stamp = _hits = _misses = 0;
    _writebacks = 0;
}

} // namespace uov
