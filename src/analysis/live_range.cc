#include "analysis/live_range.h"

#include <unordered_map>
#include <vector>

#include "support/error.h"

namespace uov {

LiveRangeResult
maxLiveValues(const Schedule &schedule, const IVec &lo, const IVec &hi,
              const Stencil &stencil)
{
    UOV_REQUIRE(lo.dim() == stencil.dim(), "dimension mismatch");

    std::unordered_map<IVec, uint64_t, IVecHash> position;
    std::vector<IVec> order;
    schedule.forEach(lo, hi, [&](const IVec &q) {
        position.emplace(q, order.size());
        order.push_back(q);
    });
    size_t n = order.size();
    UOV_REQUIRE(n > 0, "empty iteration space");

    // Death time of each value: last in-domain consumer's position.
    // Intervals are half-open [birth, death): a step reads its inputs
    // before it writes, so the cell of a value consumed at step t is
    // reusable by step t's own write (the v == ov case of the paper's
    // mappings).  A value with no consumer occupies its cell for just
    // its own step, [t, t+1).
    std::vector<int64_t> delta(n + 1, 0);
    for (size_t t = 0; t < n; ++t) {
        const IVec &p = order[t];
        uint64_t death = t;
        for (const auto &v : stencil.deps()) {
            auto it = position.find(p + v);
            if (it != position.end())
                death = std::max(death, it->second);
        }
        if (death == t)
            death = t + 1; // no consumer: live during its own step
        delta[t] += 1;
        delta[death] -= 1;
    }

    LiveRangeResult r;
    r.points = n;
    int64_t live = 0;
    int64_t total = 0;
    for (size_t t = 0; t < n; ++t) {
        live += delta[t];
        r.max_live = std::max(r.max_live, live);
        total += live;
    }
    r.avg_live = static_cast<double>(total) / static_cast<double>(n);
    return r;
}

} // namespace uov
