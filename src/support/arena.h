/**
 * @file
 * Bump (arena) allocation for the search core.
 *
 * The branch-and-bound frontier, the cone solver's iterative stack and
 * the flat point-state tables allocate millions of tiny, same-lifetime
 * objects per query.  A bump allocator turns each of those allocations
 * into a pointer increment and frees them all at once, keeping the
 * working set dense (see DESIGN.md "Search-core memory layout").
 *
 * Rules:
 *  - Individual allocations are never freed; reset() / Scope rewind
 *    whole regions at once.  Destructors are NOT run -- only
 *    trivially-destructible types may live in an arena.
 *  - Pointers into an arena are valid until the enclosing reset() or
 *    Scope rewind, and must not outlive the Arena itself.
 *  - Arenas are single-threaded; give each worker its own.
 */

#ifndef UOV_SUPPORT_ARENA_H
#define UOV_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "support/error.h"

namespace uov {

/** Chunked bump allocator with O(1) whole-region reset. */
class Arena
{
  public:
    /** @param first_chunk_bytes capacity of the first chunk; later
     *        chunks double until kMaxChunkBytes. */
    explicit Arena(size_t first_chunk_bytes = 1u << 12)
        : _next_chunk_bytes(first_chunk_bytes ? first_chunk_bytes : 1)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate @p bytes aligned to @p align (a power of two). */
    void *
    allocate(size_t bytes, size_t align)
    {
        UOV_CHECK(align != 0 && (align & (align - 1)) == 0,
                  "arena alignment " << align << " is not a power of two");
        if (bytes == 0)
            bytes = 1; // keep returned pointers distinct
        while (_current < _chunks.size()) {
            Chunk &c = _chunks[_current];
            size_t at = (c.used + align - 1) & ~(align - 1);
            if (at + bytes <= c.size) {
                c.used = at + bytes;
                _bytes_used += bytes;
                return c.data.get() + at;
            }
            // Chunk exhausted for this request; move on.  Partially
            // used chunks keep their contents (nothing is freed).
            ++_current;
        }
        addChunk(bytes + align);
        Chunk &c = _chunks.back();
        size_t at = (c.used + align - 1) & ~(align - 1);
        c.used = at + bytes;
        _bytes_used += bytes;
        return c.data.get() + at;
    }

    /** Typed array allocation; elements are NOT initialized. */
    template <typename T>
    T *
    allocateArray(size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory never runs destructors");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /** Rewind everything; chunk memory is retained for reuse. */
    void
    reset()
    {
        for (Chunk &c : _chunks)
            c.used = 0;
        _current = 0;
        _bytes_used = 0;
    }

    /** Bytes handed out since construction or the last reset(). */
    size_t bytesUsed() const { return _bytes_used; }

    /** Bytes of chunk capacity owned (the arena's real footprint). */
    size_t
    bytesReserved() const
    {
        size_t total = 0;
        for (const Chunk &c : _chunks)
            total += c.size;
        return total;
    }

    /**
     * RAII scope: everything allocated after construction is rewound
     * (not destroyed -- see the trivially-destructible rule) when the
     * scope dies.  Scopes must nest like stack frames.
     */
    class Scope
    {
      public:
        explicit Scope(Arena &arena)
            : _arena(arena), _chunk(arena._current),
              _used(arena._current < arena._chunks.size()
                        ? arena._chunks[arena._current].used
                        : 0),
              _bytes(arena._bytes_used)
        {
        }

        ~Scope()
        {
            for (size_t i = _chunk + 1; i < _arena._chunks.size(); ++i)
                _arena._chunks[i].used = 0;
            if (_chunk < _arena._chunks.size())
                _arena._chunks[_chunk].used = _used;
            _arena._current = _chunk;
            _arena._bytes_used = _bytes;
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Arena &_arena;
        size_t _chunk;
        size_t _used;
        size_t _bytes;
    };

  private:
    /** Cap on chunk growth so a huge query doesn't hoard memory. */
    static constexpr size_t kMaxChunkBytes = size_t{16} << 20;

    struct Chunk
    {
        std::unique_ptr<char[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    void
    addChunk(size_t min_bytes)
    {
        size_t size = _next_chunk_bytes;
        if (size < min_bytes)
            size = min_bytes;
        Chunk c;
        c.data = std::make_unique<char[]>(size);
        c.size = size;
        _chunks.push_back(std::move(c));
        _current = _chunks.size() - 1;
        if (_next_chunk_bytes < kMaxChunkBytes)
            _next_chunk_bytes =
                std::min(kMaxChunkBytes, _next_chunk_bytes * 2);
    }

    std::vector<Chunk> _chunks;
    size_t _current = 0;
    size_t _bytes_used = 0;
    size_t _next_chunk_bytes;
};

} // namespace uov

#endif // UOV_SUPPORT_ARENA_H
