/**
 * @file
 * End-to-end storage-mapping pipeline: the compiler pass a user of the
 * library calls.
 *
 * Given a loop nest and a statement, it (1) runs value-based
 * dependence analysis and validates the regular-stencil precondition,
 * (2) runs region analysis to confirm the statement produces
 * temporaries, (3) searches for the best UOV (shortest-vector or
 * storage objective over the nest's own domain), and (4) constructs
 * the concrete storage mapping.  The result carries everything the
 * paper's tables report: stencil, UOV, cell count, expansion cost.
 */

#ifndef UOV_ANALYSIS_PIPELINE_H
#define UOV_ANALYSIS_PIPELINE_H

#include <optional>
#include <string>

#include "analysis/dependence.h"
#include "analysis/region.h"
#include "core/search.h"
#include "ir/program.h"
#include "mapping/storage_mapping.h"

namespace uov {

/** Pipeline configuration. */
struct PlanOptions
{
    /** Objective for the UOV search. */
    SearchObjective objective = SearchObjective::ShortestVector;
    /** Layout for non-prime OVs. */
    ModLayout layout = ModLayout::Interleaved;
    /** Live-out region (defaults to "nothing survives"). */
    LiveOutPredicate live_out;
    /** Skip the B&B search and use the initial UOV (ablation). */
    bool use_initial_uov = false;
};

/** Everything the pipeline derives for one statement. */
struct MappingPlan
{
    Stencil stencil;
    SearchResult search;      ///< best UOV and search statistics
    StorageMapping mapping;   ///< concrete SM over the nest's domain
    RegionSummary regions;    ///< import/export/temporary summary
    int64_t expanded_cells;   ///< full-expansion baseline (trip count)

    /** Storage saved vs. full expansion, as a ratio >= 1. */
    double expansionRatio() const;

    std::string str() const;
};

/**
 * Run the full pipeline on statement @p stmt_index of @p nest.
 * @throws UovUserError when the preconditions fail (no regular
 *         stencil, no flow dependences, no temporaries)
 */
MappingPlan planStorageMapping(const LoopNest &nest, size_t stmt_index,
                               const PlanOptions &options = {});

} // namespace uov

#endif // UOV_ANALYSIS_PIPELINE_H
