/**
 * @file
 * Schedule-specific occupancy-vector legality.
 *
 * A UOV is safe under every legal schedule; a plain OV only under
 * schedules that finish all consumers of iteration p before p + ov
 * executes.  This module decides that condition:
 *
 *  - algebraically, for one-dimensional affine (wavefront-style)
 *    schedules sigma(q) = h.q: ov is safe iff for every dependence v,
 *    h.v < h.ov -- then sigma(p + v) < sigma(p + ov), with the
 *    equality case h.v == h.ov additionally safe when the consumer
 *    IS the overwriter (v == ov), since reads precede the write
 *    within an iteration;
 *
 *  - empirically, for any Schedule, by replaying the order and
 *    checking every consumer precedes (or is) the overwriter.
 *
 * The storage-optimized codes of Section 5 are exactly non-universal
 * OVs paired with compatible schedules; this module is the formal
 * bridge (tested against the executor in tests/test_ov_legality.cc).
 */

#ifndef UOV_SCHEDULE_OV_LEGALITY_H
#define UOV_SCHEDULE_OV_LEGALITY_H

#include "core/stencil.h"
#include "core/uov.h" // ovLegalForLinearSchedule (algebraic rule)
#include "schedule/schedule.h"

namespace uov {

/**
 * Empirical oracle: replay @p schedule over [lo, hi] and check, for
 * every point p and its overwriter p + ov, that every in-box consumer
 * p + v has already executed (or is the overwriter itself).  Boundary
 * consumers outside the box are ignored (their reads never happen).
 */
bool ovLegalForSchedule(const Schedule &schedule, const IVec &lo,
                        const IVec &hi, const IVec &ov,
                        const Stencil &stencil);

} // namespace uov

#endif // UOV_SCHEDULE_OV_LEGALITY_H
