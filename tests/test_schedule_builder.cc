/**
 * @file
 * ScheduleBuilder: primitive composition, whole-composition legality
 * against the algebraic checkers, materialization as a Schedule that
 * covers the box exactly once, lowering to the C emitter's forms, and
 * the deterministic str()/operator== surface the tuner relies on.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/uov.h"
#include "schedule/builder.h"
#include "schedule/legality.h"
#include "support/error.h"

namespace uov {
namespace {

/** Every point of [lo, hi] visited exactly once. */
void
expectCoversBoxOnce(const Schedule &schedule, const IVec &lo,
                    const IVec &hi, size_t expected)
{
    std::set<std::vector<int64_t>> seen;
    size_t visits = 0;
    schedule.forEach(lo, hi, [&](const IVec &p) {
        ++visits;
        std::vector<int64_t> key(p.dim());
        for (size_t k = 0; k < p.dim(); ++k)
            key[k] = p[k];
        EXPECT_TRUE(seen.insert(key).second)
            << p.str() << " visited twice";
    });
    EXPECT_EQ(visits, expected);
    EXPECT_EQ(seen.size(), expected);
}

TEST(ScheduleBuilder, IdentityIsLexAndAlwaysLegal)
{
    ScheduleBuilder b(2);
    EXPECT_EQ(b.str(), "lex");
    EXPECT_EQ(b.depth(), 2u);
    EXPECT_TRUE(b.transform() == IMatrix::identity(2));
    EXPECT_FALSE(b.tiled());
    EXPECT_EQ(b.copies(), 1);
    EXPECT_TRUE(b.legal(stencils::simpleExample()));
    EXPECT_TRUE(b.legal(stencils::fivePoint()));

    auto lowered = b.lower(stencils::simpleExample());
    ASSERT_TRUE(lowered.has_value());
    EXPECT_EQ(lowered->form, LoweredForm::Lexicographic);
}

TEST(ScheduleBuilder, PrimitivesValidateTheirShapeEagerly)
{
    ScheduleBuilder b(2);
    EXPECT_THROW(b.reorder({0, 0}), UovUserError); // not a permutation
    EXPECT_THROW(b.reorder({0}), UovUserError);    // wrong arity
    EXPECT_THROW(b.skew(0, 0, 1), UovUserError);   // equal dims
    EXPECT_THROW(b.skew(0, 5, 1), UovUserError);   // out of range
    EXPECT_THROW(b.split(3, 8), UovUserError);     // out of range
    EXPECT_THROW(b.split(0, 0), UovUserError);     // size < 1
    EXPECT_THROW(b.unroll(0), UovUserError);       // factor < 1
    EXPECT_THROW(ScheduleBuilder(1).unrollJam(2), UovUserError);
}

TEST(ScheduleBuilder, ReorderLegalityMatchesTransformLegal)
{
    // simpleExample has dep (1,0): interchange makes it (0,1), still
    // lex-positive; but dep (1,-1) in threeVector flips to (-1,1).
    ScheduleBuilder swap(2);
    swap.reorder({1, 0});
    EXPECT_EQ(swap.str(), "reorder(1,0)");
    EXPECT_TRUE(swap.legal(stencils::simpleExample()));
    EXPECT_FALSE(swap.legal(stencils::threeVector()));
    EXPECT_THROW(swap.validate(stencils::threeVector()), UovUserError);

    // The builder's verdict must agree with the algebraic checker on
    // its own transform.
    EXPECT_TRUE(
        transformLegal(swap.transform(), stencils::simpleExample()));
    EXPECT_FALSE(
        transformLegal(swap.transform(), stencils::threeVector()));
}

TEST(ScheduleBuilder, TilingNeedsTheCanonicalSkewFirst)
{
    Stencil s = stencils::fivePoint(); // has deps (1,-2), (1,-1)
    // Rectangular tiling without skewing is illegal: transformed
    // distance (1,-2) has a negative component.
    ScheduleBuilder naive(2);
    naive.tile({4, 4});
    EXPECT_FALSE(naive.legal(s));

    // After the canonical skew every distance is non-negative and the
    // same tiling passes.
    ScheduleBuilder skewed(2);
    skewed.skewToNonNegative(s).tile({4, 4});
    EXPECT_TRUE(skewed.legal(s));
    EXPECT_TRUE(tilingLegal(skewed.transform(), s));
    EXPECT_TRUE(skewed.tiled());
}

TEST(ScheduleBuilder, JamLegalityMatchesJamLegal)
{
    // Dep (1,-1): jam distance 1 in [1,2) with lex-negative inner
    // suffix (-1) -> unroll-and-jam by 2 reorders a true dependence.
    Stencil carried({IVec{1, -1}});
    ScheduleBuilder jam2(2);
    jam2.unrollJam(2);
    EXPECT_FALSE(jam2.legal(carried));
    EXPECT_FALSE(jamLegal(carried.deps(), 0, 2));

    // Dep (0,1) is innermost-only: any jam factor is safe.
    Stencil inner({IVec{0, 1}});
    EXPECT_TRUE(jam2.legal(inner));
    EXPECT_TRUE(jamLegal(inner.deps(), 0, 2));
}

TEST(ScheduleBuilder, BuildScheduleCoversTheBoxExactlyOnce)
{
    IVec lo{0, 0}, hi{5, 7};
    size_t points = 6 * 8;

    ScheduleBuilder lex(2);
    expectCoversBoxOnce(*lex.buildSchedule(lo, hi), lo, hi, points);

    ScheduleBuilder swapped(2);
    swapped.reorder({1, 0});
    expectCoversBoxOnce(*swapped.buildSchedule(lo, hi), lo, hi,
                        points);

    ScheduleBuilder tiled(2);
    tiled.skewToNonNegative(stencils::fivePoint()).tile({2, 3});
    expectCoversBoxOnce(*tiled.buildSchedule(lo, hi), lo, hi, points);
}

TEST(ScheduleBuilder, BuildScheduleRespectsDependenceOrder)
{
    // Under any legal composition, a dependence source must execute
    // before its target.  Exhaustively check fivePoint over a small
    // box for the skew+tile composition.
    Stencil s = stencils::fivePoint();
    ScheduleBuilder b(2);
    b.skewToNonNegative(s).tile({2, 2});
    ASSERT_TRUE(b.legal(s));

    IVec lo{0, 0}, hi{4, 4};
    std::vector<IVec> order;
    b.buildSchedule(lo, hi)->forEach(
        lo, hi, [&](const IVec &p) { order.push_back(p); });
    auto rank = [&](const IVec &p) {
        for (size_t i = 0; i < order.size(); ++i)
            if (order[i] == p)
                return i;
        ADD_FAILURE() << p.str() << " never visited";
        return order.size();
    };
    for (const IVec &p : order) {
        for (const IVec &dep : s.deps()) {
            IVec src = p - dep;
            bool inside = true;
            for (size_t k = 0; k < src.dim(); ++k)
                inside = inside && src[k] >= lo[k] && src[k] <= hi[k];
            if (inside)
                EXPECT_LT(rank(src), rank(p))
                    << "dependence " << dep.str() << " violated at "
                    << p.str();
        }
    }
}

TEST(ScheduleBuilder, LowersToRegisterTiledAndSkewedTiled)
{
    ScheduleBuilder rt(2);
    rt.unroll(4).unrollJam(2);
    EXPECT_EQ(rt.str(), "unroll(4);jam(2)");
    EXPECT_EQ(rt.copies(), 8);
    auto lowered = rt.lower(stencils::simpleExample());
    ASSERT_TRUE(lowered.has_value());
    EXPECT_EQ(lowered->form, LoweredForm::RegisterTiled);
    EXPECT_EQ(lowered->unroll, 4);
    EXPECT_EQ(lowered->jam, 2);

    Stencil s = stencils::fivePoint();
    ScheduleBuilder st(2);
    st.skewToNonNegative(s).tile({8, 32});
    auto skewed = st.lower(s);
    ASSERT_TRUE(skewed.has_value());
    EXPECT_EQ(skewed->form, LoweredForm::SkewedTiled);
    EXPECT_EQ(skewed->tile_sizes, (std::vector<int64_t>{8, 32}));

    // A permuted composition has no native lowering.
    ScheduleBuilder perm(2);
    perm.reorder({1, 0});
    EXPECT_FALSE(perm.lower(stencils::simpleExample()).has_value());
}

TEST(ScheduleBuilder, StrAndEqualityAreStructural)
{
    Stencil s = stencils::fivePoint();
    ScheduleBuilder a(2), b(2);
    a.skewToNonNegative(s).tile({8, 32});
    b.skewToNonNegative(s).tile({8, 32});
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.str(), "skew_nonneg;tile(8,32)");

    ScheduleBuilder c(2);
    c.skewToNonNegative(s).tile({8, 64});
    EXPECT_FALSE(a == c);

    ScheduleBuilder u(2), v(2);
    u.unroll(4);
    v.unroll(4).unrollJam(2);
    EXPECT_FALSE(u == v);
}

} // namespace
} // namespace uov
