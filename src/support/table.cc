#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.h"

namespace uov {

void
Table::header(std::vector<std::string> cols)
{
    UOV_REQUIRE(!cols.empty(), "table header must have at least one column");
    _header = std::move(cols);
}

void
Table::row(std::vector<std::string> cells)
{
    if (!_header.empty()) {
        UOV_REQUIRE(cells.size() == _header.size(),
                    "row width " << cells.size() << " != header width "
                                 << _header.size());
    }
    _rows.push_back(std::move(cells));
}

Table::RowBuilder &
Table::RowBuilder::cell(const std::string &s)
{
    _cells.push_back(s);
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::cell(int64_t v)
{
    _cells.push_back(std::to_string(v));
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::cell(uint64_t v)
{
    _cells.push_back(std::to_string(v));
    return *this;
}

Table::RowBuilder &
Table::RowBuilder::cell(double v, int precision)
{
    _cells.push_back(formatDouble(v, precision));
    return *this;
}

void
Table::print(std::ostream &os) const
{
    // Compute column widths over header + all rows.
    size_t ncols = _header.size();
    for (const auto &r : _rows)
        ncols = std::max(ncols, r.size());

    std::vector<size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            width[c] = std::max(width[c], cells[c].size());
    };
    widen(_header);
    for (const auto &r : _rows)
        widen(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c];
            if (c + 1 < cells.size())
                os << "  ";
        }
        os << "\n";
    };

    os << "== " << _title << " ==\n";
    if (!_header.empty()) {
        emit(_header);
        size_t total = 0;
        for (size_t c = 0; c < ncols; ++c)
            total += width[c] + (c + 1 < ncols ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : _rows)
        emit(r);
}

namespace {

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += "\"";
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << csvEscape(cells[c]);
            if (c + 1 < cells.size())
                os << ",";
        }
        os << "\n";
    };
    if (!_header.empty())
        emit(_header);
    for (const auto &r : _rows)
        emit(r);
}

std::string
formatDouble(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
formatCount(int64_t v)
{
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out += ',';
        out += *it;
        ++count;
    }
    if (v < 0)
        out += '-';
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace uov
