#include "core/search.h"

#include <chrono>
#include <cstring>
#include <sstream>
#include <vector>

#include "core/storage_count.h"
#include "core/uov.h"
#include "geometry/isqrt.h"
#include "support/checked.h"
#include "support/error.h"
#include "support/flat_map.h"
#include "support/logging.h"
#include "support/trace.h"

namespace uov {

namespace {

/**
 * Frontier entry: 4-byte point handle plus the ordering key.  The
 * (priority, seq) pair is a strict total order (seq is unique), so any
 * correct min-heap pops the exact same sequence the old
 * std::priority_queue did -- heap arity changes layout, not results.
 */
struct QEntry
{
    int64_t priority;
    uint64_t seq;
    uint32_t handle;
};

inline bool
entryBefore(const QEntry &a, const QEntry &b)
{
    if (a.priority != b.priority)
        return a.priority < b.priority;
    return a.seq < b.seq;
}

/** 4-ary min-heap on an arena: shallower than binary, cache-denser. */
class FrontierHeap
{
  public:
    explicit FrontierHeap(Arena &arena) : _v(arena, 64) {}

    bool empty() const { return _v.size() == 0; }

    void
    push(const QEntry &e)
    {
        _v.push_back(e);
        size_t i = _v.size() - 1;
        while (i) {
            size_t parent = (i - 1) / 4;
            if (!entryBefore(_v[i], _v[parent]))
                break;
            QEntry tmp = _v[i];
            _v[i] = _v[parent];
            _v[parent] = tmp;
            i = parent;
        }
    }

    QEntry
    pop()
    {
        QEntry top = _v[0];
        QEntry last = _v.back();
        _v.pop_back();
        size_t n = _v.size();
        if (n) {
            size_t i = 0;
            for (;;) {
                size_t first = i * 4 + 1;
                if (first >= n)
                    break;
                size_t best = first;
                size_t end = first + 4 < n ? first + 4 : n;
                for (size_t c = first + 1; c < end; ++c)
                    if (entryBefore(_v[c], _v[best]))
                        best = c;
                if (!entryBefore(_v[best], last))
                    break;
                _v[i] = _v[best];
                i = best;
            }
            _v[i] = last;
        }
        return top;
    }

  private:
    ArenaVector<QEntry> _v;
};

/** Flat FIFO worklist: popped entries are left behind in the arena. */
class FrontierFifo
{
  public:
    explicit FrontierFifo(Arena &arena) : _v(arena, 64) {}

    bool empty() const { return _head == _v.size(); }
    void push(const QEntry &e) { _v.push_back(e); }
    QEntry pop() { return _v[_head++]; }

  private:
    ArenaVector<QEntry> _v;
    size_t _head = 0;
};

} // namespace

std::string
SearchStats::str() const
{
    std::ostringstream oss;
    oss << "visited=" << visited << " enqueued=" << enqueued
        << " pruned=" << pruned << " bound_updates=" << bound_updates
        << " visits_to_best=" << visits_to_best << " elapsed_us="
        << elapsed_us << " arena_bytes=" << arena_bytes;
    return oss.str();
}

BranchBoundSearch::BranchBoundSearch(Stencil stencil,
                                     SearchObjective objective,
                                     SearchOptions options)
    : _stencil(std::move(stencil)), _objective(objective),
      _options(std::move(options)), _pruner(_stencil)
{
    // Stencil construction already rejects > 32 distinct vectors;
    // restate the invariant here because run() packs PATHSETs into
    // uint32_t masks and (1u << m) is undefined for m > 32.
    UOV_REQUIRE(_stencil.size() <= 32,
                "PATHSET bitmask supports at most 32 dependences; "
                "stencil " << _stencil.str() << " has "
                           << _stencil.size());
    if (_objective == SearchObjective::BoundedStorage) {
        UOV_REQUIRE(_options.isg.has_value(),
                    "BoundedStorage objective requires an ISG");
        UOV_REQUIRE(_options.isg->dim() == _stencil.dim(),
                    "ISG dimension " << _options.isg->dim()
                        << " != stencil dimension " << _stencil.dim());
    }
}

const std::shared_ptr<ConeMemo> &
BranchBoundSearch::memo()
{
    if (!_memo)
        _memo = std::make_shared<ConeMemo>(_stencil);
    return _memo;
}

int64_t
BranchBoundSearch::objectiveOf(const IVec &w) const
{
    switch (_objective) {
      case SearchObjective::ShortestVector:
        return w.normSquared();
      case SearchObjective::BoundedStorage:
        return storageCellCount(w, *_options.isg);
    }
    UOV_UNREACHABLE("bad objective");
}

SearchResult
BranchBoundSearch::run()
{
    const size_t d = _stencil.dim();
    const size_t m = _stencil.size();
    const uint32_t full_mask =
        m == 32 ? 0xffffffffu : ((1u << m) - 1);
    const auto start = std::chrono::steady_clock::now();
    const SearchBudget &budget = _options.budget;

    auto elapsed_us = [&] {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    // Capture the tracing flag once: a flip mid-run must not leave
    // half-open interval spans, and the disabled path must stay one
    // relaxed load per run, not per node.
    const bool traced = trace::tracingEnabled();
    if (traced)
        trace::begin("search.run");

    SearchResult result;

    // "search.interval" spans tile the run between incumbent
    // improvements, so the trace shows how long each bound survived.
    auto trace_incumbent = [&](int64_t obj, bool first) {
        if (!traced)
            return;
        trace::Tracer &tracer = trace::Tracer::instance();
        if (!first)
            tracer.endEvent("search.interval");
        trace::Arg args[2];
        args[0].key = "objective";
        args[0].type = trace::Arg::Type::Int;
        args[0].i = obj;
        args[1].key = "visited";
        args[1].type = trace::Arg::Type::Int;
        args[1].i = static_cast<int64_t>(result.stats.visited);
        tracer.instantEvent("search.incumbent", args, 2);
        tracer.beginEvent("search.interval");
    };

    result.best_uov = _stencil.initialUov();
    result.initial_objective = objectiveOf(result.best_uov);
    result.best_objective = result.initial_objective;
    if (_options.on_incumbent)
        _options.on_incumbent(result.best_uov, result.best_objective,
                              0, elapsed_us());
    trace_incumbent(result.best_objective, /*first=*/true);

    // Budget poll: nodes and cancellation every expansion, the clock
    // every 256th (and before the first, so a 0 ms deadline returns
    // the ov_o seed with nodes == 0, deterministically).
    auto out_of_budget = [&]() -> bool {
        if (result.stats.visited >= budget.max_nodes) {
            result.degraded_reason = "node-budget";
        } else if (budget.cancel.cancelled()) {
            result.degraded_reason = "cancelled";
        } else if (budget.deadline.bounded() &&
                   (result.stats.visited & 255) == 0 &&
                   budget.deadline.expired()) {
            result.degraded_reason = "deadline";
        } else {
            return false;
        }
        result.status = SearchStatus::Degraded;
        return true;
    };

    // Search region: offsets from which a better candidate is still
    // reachable.  For the shortest objective the radius shrinks with
    // the bound; for bounded storage it is fixed by the paper's
    // P_ovo * |ov_o| / P_M argument (shrinking it from improved
    // storage bounds is unsound for skewed ISGs, where storage does
    // not cleanly lower-bound length).
    int64_t radius_sq;
    if (_objective == SearchObjective::ShortestVector) {
        radius_sq = result.best_uov.normSquared();
    } else {
        radius_sq =
            knownBoundsRadiusSquared(result.best_uov, *_options.isg);
    }

    // Per-offset PATHSET state, flat in arena memory keyed by packed
    // coordinates: best-known mask, the mask already expanded with,
    // and the point's objective (cached: objectiveOf is pure, so the
    // value the old code recomputed per push is computed once per
    // point here).  A point is (re)expanded only when its known mask
    // gained bits, so each offset is expanded at most |V| times.
    struct PointRec
    {
        int64_t objective;
        uint32_t known;
        uint32_t expanded;
    };
    _arena.reset();
    PackedCoordMap<PointRec> state(_arena, d, 1024);

    // The frontier holds 4-byte handles into the point table; both
    // queue flavors live on the arena as flat arrays.
    FrontierHeap pq(_arena);
    FrontierFifo fifo(_arena);
    const bool use_pq = _options.use_priority_queue;
    uint64_t seq = 0;

    auto push = [&](uint32_t handle, int64_t priority) {
        QEntry e{priority, seq++, handle};
        if (use_pq)
            pq.push(e);
        else
            fifo.push(e);
        ++result.stats.enqueued;
    };
    auto empty = [&] { return use_pq ? pq.empty() : fifo.empty(); };
    auto pop = [&] { return use_pq ? pq.pop() : fifo.pop(); };

    // Raw-pointer views of the dependence vectors for the child loop.
    std::vector<const int64_t *> dep(m);
    for (size_t k = 0; k < m; ++k)
        dep[k] = _stencil.dep(k).data();

    // Coordinate scratch; wbuf snapshots the popped point because map
    // key storage may move when the child loop inserts.
    std::vector<int64_t> wbuf(d), childbuf(d);

    // Seed: the children of the origin q are one backward dependence
    // away; their PATHSET is the dependence traversed.
    for (size_t k = 0; k < m; ++k) {
        const IVec &w = _stencil.dep(k);
        bool inserted = false;
        uint32_t h = state.findOrInsert(w.data(), &inserted);
        PointRec &rec = state.value(h);
        if (inserted)
            rec.objective = objectiveOf(w);
        rec.known |= (1u << k);
        push(h, rec.objective);
    }

    while (!empty()) {
        QEntry e = pop();
        PointRec &rec = state.value(e.handle);
        uint32_t mask = rec.known;
        if (mask == rec.expanded)
            continue; // stale queue entry, nothing new to propagate

        if (out_of_budget())
            break;
        ++result.stats.visited;
        rec.expanded = mask;
        const int64_t obj_w = rec.objective;
        std::memcpy(wbuf.data(), state.key(e.handle),
                    d * sizeof(int64_t));
        if (traced && (result.stats.visited & 255) == 0) {
            TRACE_COUNTER("search.nodes", "visited",
                          result.stats.visited);
            TRACE_COUNTER("search.pruned", "pruned",
                          result.stats.pruned);
            TRACE_COUNTER("search.enqueued", "enqueued",
                          result.stats.enqueued);
            TRACE_COUNTER("search.arena", "bytes",
                          static_cast<int64_t>(_arena.bytesUsed()));
        }

        // Candidate check (paper Visit step 3).
        if (mask == full_mask) {
            if (obj_w < result.best_objective) {
                IVec wvec(wbuf.data(), d);
                result.best_objective = obj_w;
                result.best_uov = wvec;
                ++result.stats.bound_updates;
                result.stats.visits_to_best = result.stats.visited;
                if (_objective == SearchObjective::ShortestVector &&
                    !_options.disable_bound_shrinking)
                    radius_sq = obj_w;
                if (_options.on_incumbent)
                    _options.on_incumbent(result.best_uov, obj_w,
                                          result.stats.visited,
                                          elapsed_us());
                trace_incumbent(obj_w, /*first=*/false);
                UOV_LOG_DEBUG("search bound -> " << obj_w << " at "
                                                 << wvec.str());
            }
        }

        // Expand children (paper Visit steps 1-2), bounded by the
        // reachable-region test.  Insertion order matches the old
        // code exactly: a point enters the table only when its first
        // unpruned new-mask push happens.
        for (size_t k = 0; k < m; ++k) {
            for (size_t c = 0; c < d; ++c)
                childbuf[c] = checkedAdd(wbuf[c], dep[k][c]);
            uint32_t child_mask = mask | (1u << k);
            uint32_t ch = state.find(childbuf.data());
            uint32_t known =
                ch == state.kNone ? 0 : state.value(ch).known;
            if ((known | child_mask) == known)
                continue; // nothing new for this child
            if (_pruner.prune(IVec(childbuf.data(), d), radius_sq)) {
                ++result.stats.pruned;
                continue;
            }
            bool inserted = false;
            if (ch == state.kNone)
                ch = state.findOrInsert(childbuf.data(), &inserted);
            PointRec &child_rec = state.value(ch);
            if (inserted)
                child_rec.objective =
                    objectiveOf(IVec(childbuf.data(), d));
            child_rec.known = known | child_mask;
            push(ch, child_rec.objective);
        }
    }

    result.stats.elapsed_us = elapsed_us();
    result.stats.arena_bytes = _arena.bytesUsed();

    if (traced) {
        trace::Tracer &tracer = trace::Tracer::instance();
        tracer.endEvent("search.interval");
        trace::Arg args[2];
        args[0].key = "visited";
        args[0].type = trace::Arg::Type::Int;
        args[0].i = static_cast<int64_t>(result.stats.visited);
        args[1].key = "pruned";
        args[1].type = trace::Arg::Type::Int;
        args[1].i = static_cast<int64_t>(result.stats.pruned);
        tracer.endEvent("search.run", args, 2);
    }

    // Contract: no vector leaves the search API unverified, whatever
    // path (seed, candidate, degraded best-so-far) produced it.  The
    // oracle shares this search's cone memo so certification after
    // run() reuses the membership work done here.
    UOV_CHECK(UovOracle(memo()).isUov(result.best_uov),
              "search produced a non-UOV " << result.best_uov.str()
                                           << " for " << _stencil.str());
    return result;
}

SearchResult
exhaustiveUovSearch(const Stencil &stencil, SearchObjective objective,
                    const SearchOptions &options)
{
    UOV_REQUIRE(objective == SearchObjective::ShortestVector ||
                    options.isg.has_value(),
                "BoundedStorage objective requires an ISG");

    UovOracle oracle(stencil);
    IVec initial = stencil.initialUov();

    auto objective_of = [&](const IVec &w) {
        return objective == SearchObjective::ShortestVector
                   ? w.normSquared()
                   : storageCellCount(w, *options.isg);
    };

    SearchResult result;
    result.best_uov = initial;
    result.initial_objective = objective_of(initial);
    result.best_objective = result.initial_objective;

    int64_t radius_sq =
        objective == SearchObjective::ShortestVector
            ? initial.normSquared()
            : knownBoundsRadiusSquared(initial, *options.isg);
    int64_t radius = isqrt64(radius_sq) + 1;

    size_t d = stencil.dim();
    IVec w(d);
    for (size_t c = 0; c < d; ++c)
        w[c] = -radius;
    for (;;) {
        if (!w.isZero() && w.normSquared() <= radius_sq) {
            ++result.stats.visited;
            if (oracle.isUov(w)) {
                int64_t obj = objective_of(w);
                if (obj < result.best_objective ||
                    (obj == result.best_objective &&
                     w < result.best_uov)) {
                    result.best_objective = obj;
                    result.best_uov = w;
                    ++result.stats.bound_updates;
                }
            }
        }
        size_t c = d;
        bool done = false;
        while (c-- > 0) {
            if (w[c] < radius) {
                ++w[c];
                break;
            }
            w[c] = -radius;
            if (c == 0)
                done = true;
        }
        if (done)
            break;
    }
    return result;
}

} // namespace uov
