#include "core/cone.h"

#include "support/checked.h"
#include "support/error.h"

namespace uov {

namespace {

bool
allZero(const int64_t *w, size_t d)
{
    for (size_t i = 0; i < d; ++i)
        if (w[i] != 0)
            return false;
    return true;
}

} // namespace

ConeMemo::ConeMemo(Stencil stencil)
    : _stencil(std::move(stencil)), _map(_arena, _stencil.dim(), 1024)
{
    _h = _stencil.positiveFunctional();
    for (size_t c = 0; c < _stencil.dim(); ++c) {
        if (_stencil.allNonNegativeInCoord(c))
            _non_neg_coords.push_back(c);
        if (_stencil.allNonPositiveInCoord(c))
            _non_pos_coords.push_back(c);
    }

    if (!_h) {
        // Without a positive functional we must still guarantee
        // termination: require some coordinate in which every
        // dependence strictly advances.
        bool ok = false;
        for (size_t c = 0; c < _stencil.dim() && !ok; ++c) {
            bool strict = true;
            for (const auto &v : _stencil.deps())
                if (v[c] <= 0)
                    strict = false;
            ok = strict;
        }
        UOV_REQUIRE(ok, "stencil " << _stencil.str()
                        << " defeats both the exact positive functional "
                           "(overflow) and component-wise termination");
    }
}

ConeSolver::ConeSolver(Stencil stencil, uint64_t max_nodes)
    : ConeSolver(std::make_shared<ConeMemo>(std::move(stencil)), max_nodes)
{
}

ConeSolver::ConeSolver(std::shared_ptr<ConeMemo> memo, uint64_t max_nodes)
    : _memo(std::move(memo)), _max_nodes(max_nodes)
{
    UOV_CHECK(_memo != nullptr, "ConeSolver requires a memo");
}

bool
ConeSolver::prunedOut(const int64_t *w) const
{
    const ConeMemo &memo = *_memo;
    for (size_t c : memo._non_neg_coords)
        if (w[c] < 0)
            return true;
    for (size_t c : memo._non_pos_coords)
        if (w[c] > 0)
            return true;
    if (memo._h) {
        // h . w == sum a_i (h . v_i) with every h . v_i > 0, so any
        // nonzero cone member has h . w > 0.
        const int64_t *h = memo._h->data();
        const size_t d = memo._stencil.dim();
        int64_t hw = 0;
        bool nonzero = false;
        for (size_t i = 0; i < d; ++i) {
            hw = checkedAdd(hw, checkedMul(h[i], w[i]));
            nonzero = nonzero || w[i] != 0;
        }
        if (hw < 0 || (hw == 0 && nonzero))
            return true;
    }
    return false;
}

bool
ConeSolver::search(const int64_t *w0)
{
    ConeMemo &memo = *_memo;
    auto &map = memo._map;
    const auto &deps = memo._stencil.deps();
    const size_t d = memo._stencil.dim();
    const size_t m = deps.size();

    if (allZero(w0, d))
        return true;
    if (prunedOut(w0))
        return false;
    {
        uint32_t h = map.find(w0);
        if (h != map.kNone && map.value(h) != ConeMemo::kUnknown)
            return map.value(h) == ConeMemo::kInCone;
    }

    // Explicit DFS stack replacing the old recursion: a frame is an
    // (entry handle, next dependence index) pair; residue coordinates
    // are read back from the memo's key storage, so a frame is 8 bytes
    // and the stack lives on the scratch arena.  An entry left
    // kUnknown is in-flight (or abandoned by a budget abort) and is
    // treated exactly like an absent memo entry.
    Arena::Scope scope(memo._scratch);
    struct Frame
    {
        uint32_t handle;
        uint32_t k;
    };
    ArenaVector<Frame> stack(memo._scratch, 64);

    ++_nodes;
    UOV_REQUIRE(_nodes <= _max_nodes,
                "cone membership search budget of "
                    << _max_nodes << " nodes exceeded (stencil "
                    << memo._stencil.str() << ")");
    stack.push_back({map.findOrInsert(w0), 0});

    if (_child.size() != d)
        _child.assign(d, 0);
    int64_t *child = _child.data();

    while (!stack.empty()) {
        Frame &f = stack.back();
        if (f.k == m) {
            // Every dependence tried and none led into the cone.
            map.value(f.handle) = ConeMemo::kNotInCone;
            stack.pop_back();
            continue;
        }
        const int64_t *w = map.key(f.handle);
        const int64_t *v = deps[f.k].data();
        ++f.k;
        for (size_t i = 0; i < d; ++i)
            child[i] = checkedSub(w[i], v[i]);

        bool child_in_cone;
        if (allZero(child, d)) {
            child_in_cone = true;
        } else if (prunedOut(child)) {
            child_in_cone = false;
        } else {
            uint32_t h = map.findOrInsert(child);
            if (map.value(h) == ConeMemo::kUnknown) {
                // Unresolved subproblem: descend.
                ++_nodes;
                UOV_REQUIRE(_nodes <= _max_nodes,
                            "cone membership search budget of "
                                << _max_nodes << " nodes exceeded (stencil "
                                << memo._stencil.str() << ")");
                UOV_CHECK(stack.size() < 1u << 20,
                          "cone search depth runaway");
                stack.push_back({h, 0});
                continue;
            }
            child_in_cone = map.value(h) == ConeMemo::kInCone;
        }
        if (child_in_cone) {
            // A member child short-circuits every frame below it: each
            // is itself in the cone via that child.
            while (!stack.empty()) {
                map.value(stack.back().handle) = ConeMemo::kInCone;
                stack.pop_back();
            }
            return true;
        }
    }
    return false;
}

bool
ConeSolver::contains(const IVec &w)
{
    UOV_REQUIRE(w.dim() == _memo->_stencil.dim(),
                "vector dimension " << w.dim() << " != stencil dimension "
                                    << _memo->_stencil.dim());
    return search(w.data());
}

std::optional<std::vector<int64_t>>
ConeSolver::certificate(const IVec &w)
{
    if (!contains(w))
        return std::nullopt;

    const Stencil &st = _memo->_stencil;
    std::vector<int64_t> coeffs(st.size(), 0);
    IVec rest = w;
    // Greedy reconstruction: at each step some v_i must lead to a
    // residue still in the cone (contains() is memoized, so this walk
    // is cheap).
    while (!rest.isZero()) {
        bool stepped = false;
        for (size_t i = 0; i < st.size(); ++i) {
            IVec next = rest - st.dep(i);
            if (contains(next)) {
                ++coeffs[i];
                rest = next;
                stepped = true;
                break;
            }
        }
        UOV_CHECK(stepped, "certificate reconstruction stalled at "
                               << rest.str());
    }
    return coeffs;
}

} // namespace uov
