#include "codegen/codegen.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "codegen/jit.h"
#include "codegen/regcost.h"
#include "mapping/expanded_array.h"
#include "schedule/legality.h"
#include "support/error.h"
#include "support/logging.h"

namespace uov {

namespace {

/// Boundary-value weights per dimension (documented in the output).
constexpr int64_t kBvalWeights[] = {3, 7, 11, 13, 17, 19};

/** Emit "a0*q0 + a1*q1 + ..." linear expressions. */
std::string
linearExpr(const IVec &coeffs)
{
    std::ostringstream oss;
    oss << "(";
    for (size_t c = 0; c < coeffs.dim(); ++c) {
        if (c)
            oss << " + ";
        oss << coeffs[c] << "L*q" << c;
    }
    oss << ")";
    return oss.str();
}

std::string
argList(size_t d)
{
    std::ostringstream oss;
    for (size_t c = 0; c < d; ++c) {
        if (c)
            oss << ", ";
        oss << "long q" << c;
    }
    return oss.str();
}

std::string
callArgs(size_t d, const std::vector<std::string> &exprs)
{
    std::ostringstream oss;
    for (size_t c = 0; c < d; ++c) {
        if (c)
            oss << ", ";
        oss << exprs[c];
    }
    return oss.str();
}

/** The iteration-variable name "q<k>". */
std::string
qvar(size_t k)
{
    std::ostringstream oss;
    oss << "q" << k;
    return oss.str();
}

/** The iteration-variable expressions "q0".."q<d-1>". */
std::vector<std::string>
plainVars(size_t d)
{
    std::vector<std::string> qs;
    for (size_t k = 0; k < d; ++k)
        qs.push_back(qvar(k));
    return qs;
}

bool
validIdentifier(const std::string &name)
{
    if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])))
        return false;
    for (char ch : name)
        if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_')
            return false;
    return true;
}

const char *
scheduleName(GenSchedule s)
{
    switch (s) {
      case GenSchedule::Lexicographic:
        return "lexicographic";
      case GenSchedule::SkewedTiled:
        return "skewed-tiled";
      case GenSchedule::RegisterTiled:
        return "register-tiled";
    }
    UOV_UNREACHABLE("bad GenSchedule");
}

/**
 * One statement instance at the iteration named by @p q (per-dim
 * expressions), brace-wrapped so copies can be replicated in an
 * unrolled body.  Mirrored exactly by interpretKernel.
 */
std::string
emitStatement(const DependenceInfo &deps, size_t d,
              const std::vector<std::string> &q)
{
    std::ostringstream body;
    body << "{\n";
    body << "    double v = 0.0;\n";
    for (size_t k = 0; k < deps.reads.size(); ++k) {
        const IVec &dist = deps.reads[k].distance;
        std::vector<std::string> args;
        for (size_t c = 0; c < d; ++c)
            args.push_back("(" + q[c] + ") - " +
                           std::to_string(dist[c]) + "L");
        body << "    v += " << (k + 1) << ".0 * val("
             << callArgs(d, args) << ");\n";
    }
    body << "    v = 0.5*v";
    for (size_t k = 0; k < d; ++k)
        body << " + 0.00" << k + 1 << "*(double)(" << q[k] << ")";
    body << ";\n";
    body << "    TMP[sm(" << callArgs(d, q) << ")] = v;\n";
    body << "}\n";
    return body.str();
}

/** Re-indent @p text by 4*levels spaces per line. */
std::string
indented(const std::string &text, int levels)
{
    std::string pad(static_cast<size_t>(4 * levels), ' ');
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line))
        out << pad << line << "\n";
    return out.str();
}

/**
 * The register-tiled loop nest: lexicographic order with the
 * innermost loop unrolled by @p unroll and (for d >= 2) the
 * second-innermost jammed by @p jam, remainder loops covering the
 * ragged edges.  Copies execute innermost-offset-major, jam-offset
 * minor -- the in-block order jamLegal's condition assumes.
 */
void
emitRegisterTiled(std::ostream &c, const DependenceInfo &deps,
                  size_t d, const IVec &lo, const IVec &hi,
                  int64_t jam, int64_t unroll)
{
    size_t u = d - 1;          // innermost dim
    size_t j = d >= 2 ? d - 2 : 0; // jammed dim (unused when d == 1)

    auto stmt = [&](int64_t a, int64_t b) {
        std::vector<std::string> q = plainVars(d);
        if (d >= 2 && a > 0) {
            std::ostringstream oss;
            oss << "q" << j << " + " << a << "L";
            q[j] = oss.str();
        }
        if (b > 0) {
            std::ostringstream oss;
            oss << "q" << u << " + " << b << "L";
            q[u] = oss.str();
        }
        return emitStatement(deps, d, q);
    };

    // Innermost loop pair (main unrolled-by-U + remainder) with
    // `copies` jam copies per statement slot, at indent `lvl`.
    auto inner_loops = [&](int64_t copies, int lvl) {
        std::ostringstream s;
        s << "long q" << u << ";\n"
          << "for (q" << u << " = " << lo[u] << "L; q" << u << " + "
          << unroll - 1 << "L <= " << hi[u] << "L; q" << u
          << " += " << unroll << "L) {\n";
        for (int64_t b = 0; b < unroll; ++b)
            for (int64_t a = 0; a < copies; ++a)
                s << indented(stmt(a, b), 1);
        s << "}\n"
          << "for (; q" << u << " <= " << hi[u] << "L; ++q" << u
          << ") {\n";
        for (int64_t a = 0; a < copies; ++a)
            s << indented(stmt(a, 0), 1);
        s << "}\n";
        c << indented(s.str(), lvl);
    };

    if (d == 1) {
        inner_loops(1, 1);
        return;
    }

    // Outer dims 0..d-3 stay plain lexicographic loops.
    for (size_t k = 0; k < j; ++k)
        c << std::string(4 * (k + 1), ' ') << "for (long q" << k
          << " = " << lo[k] << "L; q" << k << " <= " << hi[k]
          << "L; ++q" << k << ") {\n";
    int lvl = static_cast<int>(j) + 1;

    std::ostringstream jl;
    jl << "long q" << j << ";\n"
       << "for (q" << j << " = " << lo[j] << "L; q" << j << " + "
       << jam - 1 << "L <= " << hi[j] << "L; q" << j << " += " << jam
       << "L) {\n";
    c << indented(jl.str(), lvl);
    inner_loops(jam, lvl + 1);
    c << std::string(4 * static_cast<size_t>(lvl), ' ') << "}\n";

    std::ostringstream rl;
    rl << "for (; q" << j << " <= " << hi[j] << "L; ++q" << j
       << ") {\n";
    c << indented(rl.str(), lvl);
    inner_loops(1, lvl + 1);
    c << std::string(4 * static_cast<size_t>(lvl), ' ') << "}\n";

    for (size_t k = j; k-- > 0;)
        c << std::string(4 * (k + 1), ' ') << "}\n";
}

} // namespace

int64_t
outputCellCount(const LoopNest &nest)
{
    int64_t out_cells = 1;
    for (size_t c = 1; c < nest.depth(); ++c)
        out_cells *= nest.hi()[c] - nest.lo()[c] + 1;
    return out_cells;
}

std::vector<double>
interpretKernel(const LoopNest &nest)
{
    DependenceInfo deps = analyzeDependences(nest, 0);
    const IVec &lo = nest.lo();
    const IVec &hi = nest.hi();
    size_t d = nest.depth();
    ExpandedArray<double> vals(lo, hi);
    auto bval = [&](const IVec &p) {
        int64_t acc = 1;
        for (size_t c = 0; c < p.dim(); ++c)
            acc += kBvalWeights[c] * p[c];
        return static_cast<double>(acc);
    };
    // Lexicographic sweep via odometer.
    IVec q = lo;
    for (;;) {
        double v = 0.0;
        for (size_t k = 0; k < deps.reads.size(); ++k) {
            IVec p = q - deps.reads[k].distance;
            double in = vals.inBounds(p) ? vals.at(p) : bval(p);
            v += static_cast<double>(k + 1) * in;
        }
        v = 0.5 * v;
        for (size_t c = 0; c < d; ++c)
            v += (static_cast<double>(c + 1) / 1000.0) *
                 static_cast<double>(q[c]);
        vals.at(q) = v;

        size_t c = d;
        bool done = false;
        while (c-- > 0) {
            if (q[c] < hi[c]) {
                ++q[c];
                break;
            }
            q[c] = lo[c];
            if (c == 0)
                done = true;
        }
        if (done)
            break;
    }

    // Final q0-hyperplane, row-major over dims 1..d-1.
    std::vector<double> out;
    if (d == 1) {
        out.push_back(vals.at(hi));
        return out;
    }
    IVec p = lo;
    p[0] = hi[0];
    for (;;) {
        out.push_back(vals.at(p));
        size_t c = d;
        bool done = false;
        while (c-- > 1) {
            if (p[c] < hi[c]) {
                ++p[c];
                break;
            }
            p[c] = lo[c];
            if (c == 1)
                done = true;
        }
        if (done)
            break;
    }
    return out;
}

GeneratedCode
generateC(const LoopNest &nest, const MappingPlan &plan,
          const CodegenOptions &options)
{
    size_t d = nest.depth();
    UOV_REQUIRE(d >= 1 && d <= 6, "codegen supports 1- to 6-D nests");
    UOV_REQUIRE(options.schedule != GenSchedule::SkewedTiled || d == 2,
                "skewed-tiled codegen currently targets 2-D nests "
                "(the paper's Section 4 setting); use Lexicographic "
                "for other depths");
    UOV_REQUIRE(nest.statements().size() >= 1, "empty nest");
    UOV_REQUIRE(validIdentifier(options.function_name),
                "function_name '" << options.function_name
                                  << "' is not a valid C identifier");

    // Validate the options against the schedule up front: silently
    // ignoring a knob (tile_sizes under Lexicographic) hides bugs in
    // the caller's sweep scripts.
    if (options.schedule == GenSchedule::SkewedTiled) {
        UOV_REQUIRE(options.tile_sizes.size() == 2,
                    "SkewedTiled needs exactly two tile sizes, got "
                        << options.tile_sizes.size());
        UOV_REQUIRE(options.tile_sizes[0] >= 1 &&
                        options.tile_sizes[1] >= 1,
                    "tile sizes must be >= 1, got {"
                        << options.tile_sizes[0] << ", "
                        << options.tile_sizes[1] << "}");
    } else {
        UOV_REQUIRE(options.tile_sizes.empty(),
                    "tile_sizes is only meaningful for the "
                    "SkewedTiled schedule; the "
                        << scheduleName(options.schedule)
                        << " schedule would silently ignore the "
                        << options.tile_sizes.size()
                        << " size(s) given");
    }
    if (options.schedule == GenSchedule::RegisterTiled) {
        UOV_REQUIRE(options.unroll >= 0 && options.unroll <= 64,
                    "unroll factor must be in [0, 64], got "
                        << options.unroll);
        UOV_REQUIRE(options.jam >= 0 && options.jam <= 64,
                    "jam factor must be in [0, 64], got "
                        << options.jam);
        UOV_REQUIRE(d >= 2 || options.jam <= 1,
                    "a 1-D nest has no second-innermost loop to jam "
                    "(jam=" << options.jam << ")");
    } else {
        UOV_REQUIRE(options.unroll == 0 && options.jam == 0,
                    "unroll/jam are only meaningful for the "
                    "RegisterTiled schedule; the "
                        << scheduleName(options.schedule)
                        << " schedule would silently ignore them");
    }

    const Statement &stmt = nest.statement(0);

    DependenceInfo deps = analyzeDependences(nest, 0);
    UOV_REQUIRE(deps.reads.size() == stmt.reads.size(),
                "codegen requires every read to reference the written "
                "array");
    for (const auto &rd : deps.reads)
        UOV_REQUIRE(rd.kind == ReadKind::LoopCarriedFlow,
                    "codegen requires flow-only reads; read "
                        << rd.read_index << " is an import");

    const IVec &lo = nest.lo();
    const IVec &hi = nest.hi();
    const StorageMapping &sm = plan.mapping;

    // The output convention reads the final q0-hyperplane after the
    // sweep.  Under OV-mapped storage that plane survives only when
    // the OV advances dimension 0: cells recur along q + Z*ov, so an
    // ov with ov[0] == 0 lets a later iteration in the same plane
    // overwrite a result before the copy-out runs.
    UOV_REQUIRE(options.storage != GenStorage::OvMapped ||
                    sm.ov()[0] >= 1,
                "OV-mapped codegen requires an occupancy vector that "
                "advances dimension 0 (the output hyperplane); ov "
                    << sm.ov().str()
                    << " would let in-plane iterations clobber the "
                       "output");

    // Register-tiling factors: explicit when given, otherwise from
    // the cost model fed by the mapping's live-cell count.  An
    // explicit jam must be legal; the model only proposes legal ones.
    int64_t unroll = 1, jam = 1;
    if (options.schedule == GenSchedule::RegisterTiled) {
        std::vector<IVec> dists;
        for (const auto &rd : deps.reads)
            dists.push_back(rd.distance);
        RegisterPlan rp = pickRegisterPlan(dists, d, 16,
                                           sm.cellCount());
        unroll = options.unroll > 0 ? options.unroll : rp.unroll;
        jam = options.jam > 0 ? options.jam : rp.jam;
        if (d >= 2 && options.jam > 0)
            UOV_REQUIRE(jamLegal(dists, d - 2, jam),
                        "jam factor " << jam
                            << " reorders a dependence of "
                            << plan.stencil.str()
                            << "; pick a smaller factor or let the "
                               "cost model choose");
    }

    int64_t cells;
    if (options.storage == GenStorage::OvMapped) {
        cells = sm.cellCount();
    } else {
        cells = 1;
        for (size_t c = 0; c < d; ++c)
            cells *= hi[c] - lo[c] + 1;
    }

    // Output: the final hyperplane of dimension 0, linearized
    // row-major over dimensions 1..d-1 (a scalar when d == 1).
    int64_t out_cells = outputCellCount(nest);

    std::ostringstream c;
    c << "/* Generated by uov::generateC -- "
      << (options.storage == GenStorage::OvMapped
              ? "OV-mapped storage, "
              : "expanded storage, ")
      << scheduleName(options.schedule) << " schedule";
    if (options.schedule == GenSchedule::RegisterTiled)
        c << " (unroll=" << unroll << ", jam=" << jam << ")";
    c << ".\n"
      << " * nest: " << nest.str() << "\n"
      << " * stencil: " << plan.stencil.str() << ", uov: "
      << plan.search.best_uov.str() << "\n"
      << " * Boundary convention: an out-of-box point p has value\n"
      << " * bval(p) = 1 + sum_k w_k*p_k with w = {3,7,11,13,17,19}.\n"
      << " * Output: the final q0-hyperplane, row-major over the\n"
      << " * remaining dimensions (" << out_cells << " doubles).\n"
      << " */\n\n";

    c << "static double TMP[" << cells << "];\n\n";

    c << "static double bval(" << argList(d) << ")\n{\n    return "
      << "(double)(1";
    for (size_t k = 0; k < d; ++k)
        c << " + " << kBvalWeights[k] << "*q" << k;
    c << ");\n}\n\n";

    // Storage index function.
    c << "static long sm(" << argList(d) << ")\n{\n";
    if (options.storage == GenStorage::Expanded) {
        c << "    long idx = 0;\n";
        int64_t stride = 1;
        std::vector<int64_t> strides(d, 1);
        for (size_t k = d; k-- > 0;) {
            strides[k] = stride;
            stride *= hi[k] - lo[k] + 1;
        }
        for (size_t k = 0; k < d; ++k)
            c << "    idx += (q" << k << " - " << lo[k] << "L)*"
              << strides[k] << "L;\n";
        c << "    return idx;\n";
    } else {
        c << "    long lin = 0;\n";
        for (size_t k = 0; k < sm.mappingVectors().size(); ++k) {
            c << "    lin += (" << linearExpr(sm.mappingVectors()[k])
              << " - " << sm.rowLow(k) << "L)*" << sm.rowStride(k)
              << "L;\n";
        }
        int64_t g = sm.modClasses();
        if (g == 1) {
            c << "    return lin;\n";
        } else {
            c << "    long cls = " << linearExpr(sm.alphaVector())
              << " % " << g << "L;\n"
              << "    if (cls < 0) cls += " << g << "L;\n";
            if (sm.layout() == ModLayout::Interleaved)
                c << "    return lin*" << g << "L + cls;\n";
            else
                c << "    return lin + cls*" << sm.modFactor()
                  << "L;\n";
        }
    }
    c << "}\n\n";

    c << "static double val(" << argList(d) << ")\n{\n    if (";
    for (size_t k = 0; k < d; ++k) {
        if (k)
            c << " && ";
        c << "q" << k << " >= " << lo[k] << "L && q" << k
          << " <= " << hi[k] << "L";
    }
    {
        std::vector<std::string> qs = plainVars(d);
        c << ")\n        return TMP[sm(" << callArgs(d, qs)
          << ")];\n    return bval(" << callArgs(d, qs) << ");\n}\n\n";
    }

    c << "void " << options.function_name << "(double *output)\n{\n";

    if (options.schedule == GenSchedule::Lexicographic) {
        for (size_t k = 0; k < d; ++k) {
            c << std::string(4 * (k + 1), ' ') << "for (long q" << k
              << " = " << lo[k] << "L; q" << k << " <= " << hi[k]
              << "L; ++q" << k << ") {\n";
        }
        c << indented(emitStatement(deps, d, plainVars(d)),
                      static_cast<int>(d) + 1);
        for (size_t k = d; k-- > 0;)
            c << std::string(4 * (k + 1), ' ') << "}\n";
    } else if (options.schedule == GenSchedule::RegisterTiled) {
        emitRegisterTiled(c, deps, d, lo, hi, jam, unroll);
    } else {
        IMatrix skew = skewToNonNegative(plan.stencil);
        int64_t f = skew(1, 0);
        int64_t ts0 = options.tile_sizes[0];
        int64_t ts1 = options.tile_sizes[1];
        int64_t y1_lo = f * lo[0] + lo[1];
        int64_t y1_hi = f * hi[0] + hi[1];
        c << "    /* skew y1 = " << f << "*q0 + q1; rectangular tiles "
          << ts0 << "x" << ts1 << " in (y0, y1) */\n"
          << "    for (long t0 = " << lo[0] << "L; t0 <= " << hi[0]
          << "L; t0 += " << ts0 << "L) {\n"
          << "        for (long t1 = " << y1_lo << "L; t1 <= " << y1_hi
          << "L; t1 += " << ts1 << "L) {\n"
          << "            long q0_hi = t0 + " << ts0 - 1 << "L < "
          << hi[0] << "L ? t0 + " << ts0 - 1 << "L : " << hi[0]
          << "L;\n"
          << "            for (long q0 = t0; q0 <= q0_hi; ++q0) {\n"
          << "                long y1a = " << f << "L*q0 + " << lo[1]
          << "L; if (y1a < t1) y1a = t1;\n"
          << "                long y1b = " << f << "L*q0 + " << hi[1]
          << "L; if (y1b > t1 + " << ts1 - 1 << "L) y1b = t1 + "
          << ts1 - 1 << "L;\n"
          << "                for (long y1 = y1a; y1 <= y1b; ++y1) {\n"
          << "                    long q1 = y1 - " << f << "L*q0;\n"
          << indented(emitStatement(deps, d, plainVars(d)), 5)
          << "                }\n"
          << "            }\n"
          << "        }\n    }\n";
    }

    // Emit the output copy: iterate dimensions 1..d-1.
    if (d == 1) {
        c << "    output[0] = TMP[sm(" << hi[0] << "L)];\n";
    } else {
        std::vector<std::string> qs;
        qs.push_back(std::to_string(hi[0]) + "L");
        for (size_t k = 1; k < d; ++k)
            qs.push_back(qvar(k));
        for (size_t k = 1; k < d; ++k) {
            c << std::string(4 * k, ' ') << "for (long q" << k << " = "
              << lo[k] << "L; q" << k << " <= " << hi[k] << "L; ++q"
              << k << ") {\n";
        }
        // Row-major output index over dims 1..d-1.
        c << std::string(4 * d, ' ') << "output[0";
        int64_t stride = 1;
        std::vector<int64_t> strides(d, 1);
        for (size_t k = d; k-- > 1;) {
            strides[k] = stride;
            stride *= hi[k] - lo[k] + 1;
        }
        for (size_t k = 1; k < d; ++k)
            c << " + (q" << k << " - " << lo[k] << "L)*" << strides[k]
              << "L";
        c << "] = TMP[sm(" << callArgs(d, qs) << ")];\n";
        for (size_t k = d; k-- > 1;)
            c << std::string(4 * k, ' ') << "}\n";
    }
    c << "}\n";

    GeneratedCode out;
    out.source = c.str();
    out.function_name = options.function_name;
    out.temp_cells = cells;
    out.unroll = unroll;
    out.jam = jam;
    return out;
}

std::string
compileToSharedObject(const GeneratedCode &code,
                      const std::string &work_dir)
{
    std::string compiler = JitCompiler::findHostCompiler();
    UOV_REQUIRE(!compiler.empty(),
                "no host C compiler found (set UOV_CC or put cc, "
                "gcc, or clang on PATH)");
    std::string base = work_dir + "/" + code.function_name;
    std::string c_path = base + ".c";
    std::string so_path = base + ".so";
    {
        std::ofstream f(c_path);
        UOV_REQUIRE(f.good(), "cannot write " << c_path);
        f << code.source;
    }
    jit_detail::runHostCompiler(compiler, {"-O2", "-ffp-contract=off"},
                                c_path, so_path);
    UOV_LOG_INFO("compiled " << so_path);
    return so_path;
}

} // namespace uov
