/**
 * @file
 * Shared JSON string escaping.
 *
 * One escaping routine serves every JSON emitter in the tree -- the
 * metrics registry dump, the structured log mode, and the Chrome
 * trace-event exporter -- so a name that renders safely in one output
 * renders safely in all of them.  Escapes quotes, backslashes, and
 * control characters; bytes >= 0x20 (including UTF-8 sequences) pass
 * through untouched, which is valid JSON.
 */

#ifndef UOV_SUPPORT_JSON_H
#define UOV_SUPPORT_JSON_H

#include <iomanip>
#include <sstream>
#include <string>

namespace uov {

inline std::string
jsonEscape(const std::string &s)
{
    std::ostringstream oss;
    for (char c : s) {
        switch (c) {
          case '"':
            oss << "\\\"";
            break;
          case '\\':
            oss << "\\\\";
            break;
          case '\b':
            oss << "\\b";
            break;
          case '\f':
            oss << "\\f";
            break;
          case '\n':
            oss << "\\n";
            break;
          case '\r':
            oss << "\\r";
            break;
          case '\t':
            oss << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                oss << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c)
                    << std::dec;
            } else {
                oss << c;
            }
        }
    }
    return oss.str();
}

} // namespace uov

#endif // UOV_SUPPORT_JSON_H
