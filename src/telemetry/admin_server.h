/**
 * @file
 * The admin socket: a minimal single-threaded HTTP/1.0 server on its
 * own thread, exposing the live telemetry plane of a running uovd.
 *
 * Endpoints (all GET, Connection: close):
 *
 *   /metrics        Prometheus text exposition of the shared
 *                   MetricsRegistry (scrape-consistent snapshots)
 *   /healthz        liveness: always 200 while the thread serves;
 *                   JSON body reports store state, shed state, and
 *                   queue depth vs the high-water mark
 *   /readyz         readiness: 503 while load shedding is engaged or
 *                   a configured store failed to open, else 200
 *   /slo            rolling-window latency quantiles and outcome
 *                   ratios vs targets (SloTracker::json)
 *   /flight         the flight recorder's last-K request digests
 *   /spans          span self-time summary when a trace session is
 *                   armed (hooks.spans_json), else {"enabled":false}
 *   /quitquitquit   acknowledge and latch the quit flag the driver's
 *                   --admin-hold waits on (the idiomatic way to stop
 *                   a held daemon from a script)
 *
 * Design constraints, in order: (1) the admin plane must never
 * perturb the serving path -- handlers only *read* shared state
 * through snapshot APIs that were built to be scraped concurrently;
 * (2) no dependencies -- hand-rolled HTTP/1.0 over POSIX sockets,
 * bound to 127.0.0.1 only (an admin plane is not an internet
 * service); (3) simple lifecycle -- the constructor binds and
 * listens (throwing UovUserError on failure, with the ephemeral
 * port 0 resolving to the real port before the constructor returns),
 * the destructor joins.  One connection is served at a time; a stuck
 * client is bounded by a 2 s socket timeout, not by the daemon's
 * patience.
 */

#ifndef UOV_TELEMETRY_ADMIN_SERVER_H
#define UOV_TELEMETRY_ADMIN_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "support/metrics.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/slo.h"

namespace uov {
namespace telemetry {

/** What /healthz and /readyz report; produced by the driver's hook. */
struct HealthStatus
{
    bool ready = true;            ///< false -> /readyz returns 503
    bool store_configured = false;
    bool store_ok = false;        ///< open and serving
    bool shed_active = false;
    int64_t queue_depth = 0;
    int64_t shed_high_water = 0;  ///< 0 = admission control off

    std::string json() const;
};

/** The shared state the endpoints render.  All pointers optional. */
struct AdminHooks
{
    const MetricsRegistry *metrics = nullptr;
    const FlightRecorder *flight = nullptr;
    const SloTracker *slo = nullptr;
    std::function<HealthStatus()> health;     ///< default: all-ok
    std::function<std::string()> spans_json;  ///< /spans body
};

class AdminServer
{
  public:
    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral), listen, and start the
     * serving thread.  @p hooks targets must outlive the server.
     *
     * @throws UovUserError when the socket cannot be bound.
     */
    AdminServer(AdminHooks hooks, uint16_t port);

    ~AdminServer();

    AdminServer(const AdminServer &) = delete;
    AdminServer &operator=(const AdminServer &) = delete;

    /** The bound port (the resolved one when constructed with 0). */
    uint16_t port() const { return _port; }

    /** Requests served so far (test introspection). */
    uint64_t requestsServed() const;

    /** Whether /quitquitquit has been received. */
    bool quitRequested() const;

    /** Block until /quitquitquit arrives or stop() is called. */
    void waitQuit();

    /** Stop serving and join the thread (idempotent). */
    void stop();

    /**
     * Dispatch one request path to its response (status line and
     * body) without any socket -- the unit-testable core of the
     * server; the socket loop calls exactly this.
     */
    std::string handle(const std::string &method,
                       const std::string &path);

  private:
    void serveLoop();

    AdminHooks _hooks;
    uint16_t _port = 0;
    int _listen_fd = -1;
    int _wake_fds[2] = {-1, -1}; ///< self-pipe to interrupt poll()
    std::atomic<uint64_t> _served{0};
    std::atomic<bool> _stop{false};
    std::atomic<bool> _quit{false};
    std::mutex _quit_mutex;
    std::condition_variable _quit_cv;
    std::thread _thread;
};

} // namespace telemetry
} // namespace uov

#endif // UOV_TELEMETRY_ADMIN_SERVER_H
