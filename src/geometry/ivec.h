/**
 * @file
 * IVec: an exact integer vector of small, arbitrary dimension.
 *
 * The workhorse type of the library: dependence distances, occupancy
 * vectors, mapping vectors and iteration points are all IVecs.  All
 * arithmetic is overflow-checked.
 */

#ifndef UOV_GEOMETRY_IVEC_H
#define UOV_GEOMETRY_IVEC_H

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace uov {

/** Exact integer vector in Z^d. */
class IVec
{
  public:
    /** Zero-dimensional vector (useful as a placeholder). */
    IVec() = default;

    /** Zero vector of dimension @p dim. */
    explicit IVec(size_t dim) : _c(dim, 0) {}

    /** From explicit coordinates: IVec{1, -2}. */
    IVec(std::initializer_list<int64_t> coords) : _c(coords) {}

    /** From a coordinate vector. */
    explicit IVec(std::vector<int64_t> coords) : _c(std::move(coords)) {}

    size_t dim() const { return _c.size(); }

    int64_t operator[](size_t i) const;
    int64_t &operator[](size_t i);

    const std::vector<int64_t> &coords() const { return _c; }

    /** Component-wise arithmetic; dimensions must match. */
    IVec operator+(const IVec &o) const;
    IVec operator-(const IVec &o) const;
    IVec operator-() const;
    IVec operator*(int64_t s) const;
    IVec &operator+=(const IVec &o);
    IVec &operator-=(const IVec &o);

    bool operator==(const IVec &o) const { return _c == o._c; }
    bool operator!=(const IVec &o) const { return _c != o._c; }

    /** Lexicographic order (for use as map keys and schedule order). */
    bool operator<(const IVec &o) const;

    /** True iff every coordinate is zero. */
    bool isZero() const;

    /**
     * True iff the first nonzero coordinate is positive.
     * A legal dependence distance vector is lexicographically positive.
     */
    bool isLexPositive() const;

    /** Dot product. @pre dimensions match */
    int64_t dot(const IVec &o) const;

    /** Squared Euclidean length (exact). */
    int64_t normSquared() const;

    /** Sum of |coordinate| (L1 norm, exact). */
    int64_t norm1() const;

    /** max |coordinate| (Linf norm, exact). */
    int64_t normInf() const;

    /**
     * Content: gcd of all coordinates (non-negative); 0 for the zero
     * vector.  A vector is "prime" (primitive) iff content() == 1.
     */
    int64_t content() const;

    /** True iff content() == 1 (the paper's "prime" OV). */
    bool isPrime() const { return content() == 1; }

    /** Divide every coordinate by @p s. @pre s divides every coordinate */
    IVec dividedBy(int64_t s) const;

    /** "(a, b, c)" rendering. */
    std::string str() const;

    /** Stable hash for unordered containers. */
    size_t hash() const;

  private:
    std::vector<int64_t> _c;
};

std::ostream &operator<<(std::ostream &os, const IVec &v);

/** Hash functor for std::unordered_map<IVec, ...>. */
struct IVecHash
{
    size_t operator()(const IVec &v) const { return v.hash(); }
};

} // namespace uov

#endif // UOV_GEOMETRY_IVEC_H
