#include "service/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "service/result_cache.h"
#include "support/error.h"
#include "support/failpoint.h"
#include "support/logging.h"

namespace uov {
namespace service {

namespace {

constexpr char kMagic[8] = {'U', 'O', 'V', 'S', 'T', 'O', '0', '1'};
constexpr size_t kMagicBytes = sizeof(kMagic);
constexpr size_t kFrameBytes = 4 + 8; ///< u32 len + u64 checksum

/** A record bigger than this is framing garbage, not data. */
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/** Plain FNV-1a 64 over the payload bytes. */
uint64_t
fnv1a(const char *data, size_t len)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putI64(std::string &out, int64_t v)
{
    putU64(out, static_cast<uint64_t>(v));
}

/** Bounds-checked little-endian reader over a payload. */
class Cursor
{
  public:
    explicit Cursor(const std::string &bytes) : _bytes(bytes) {}

    bool
    u32(uint32_t &v)
    {
        if (_pos + 4 > _bytes.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                     static_cast<unsigned char>(_bytes[_pos + i]))
                 << (8 * i);
        _pos += 4;
        return true;
    }

    bool
    u64(uint64_t &v)
    {
        if (_pos + 8 > _bytes.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                     static_cast<unsigned char>(_bytes[_pos + i]))
                 << (8 * i);
        _pos += 8;
        return true;
    }

    bool
    i64(int64_t &v)
    {
        uint64_t u;
        if (!u64(u))
            return false;
        v = static_cast<int64_t>(u);
        return true;
    }

    bool
    u8(uint8_t &v)
    {
        if (_pos >= _bytes.size())
            return false;
        v = static_cast<unsigned char>(_bytes[_pos++]);
        return true;
    }

    bool
    bytes(std::string &out, size_t len)
    {
        if (_pos + len > _bytes.size())
            return false;
        out.assign(_bytes, _pos, len);
        _pos += len;
        return true;
    }

    bool done() const { return _pos == _bytes.size(); }

  private:
    const std::string &_bytes;
    size_t _pos = 0;
};

void
putIVec(std::string &out, const IVec &v)
{
    putU32(out, static_cast<uint32_t>(v.dim()));
    for (size_t i = 0; i < v.dim(); ++i)
        putI64(out, v[i]);
}

bool
getIVec(Cursor &cur, IVec &out)
{
    uint32_t dim;
    if (!cur.u32(dim) || dim == 0 || dim > 1024)
        return false;
    std::vector<int64_t> coords(dim);
    for (uint32_t i = 0; i < dim; ++i)
        if (!cur.i64(coords[i]))
            return false;
    out = IVec(std::move(coords));
    return true;
}

} // namespace

std::string
ResultStore::encodePayload(const CanonicalKey &key,
                           const ServiceAnswer &answer)
{
    std::string out;
    // Key.
    putU32(out, static_cast<uint32_t>(key.deps.size()));
    for (const IVec &v : key.deps)
        putIVec(out, v);
    out.push_back(
        key.objective == SearchObjective::BoundedStorage ? 1 : 0);
    out.push_back(key.isg_lo.has_value() ? 1 : 0);
    if (key.isg_lo) {
        putIVec(out, *key.isg_lo);
        putIVec(out, *key.isg_hi);
    }
    putI64(out, key.deadline_ms);
    // Answer.
    putIVec(out, answer.best_uov);
    putI64(out, answer.best_objective);
    putI64(out, answer.initial_objective);
    putU64(out, answer.canonical_deps);
    out.push_back(answer.degraded ? 1 : 0);
    putU32(out, static_cast<uint32_t>(answer.degraded_reason.size()));
    out += answer.degraded_reason;
    putU32(out, static_cast<uint32_t>(answer.cert.size()));
    for (const auto &row : answer.cert) {
        putU32(out, static_cast<uint32_t>(row.size()));
        for (int64_t c : row)
            putI64(out, c);
    }
    return out;
}

bool
ResultStore::decodePayload(const std::string &payload, CanonicalKey &key,
                           ServiceAnswer &answer)
{
    Cursor cur(payload);
    uint32_t ndeps;
    if (!cur.u32(ndeps) || ndeps == 0 || ndeps > 100'000)
        return false;
    key.deps.clear();
    key.deps.reserve(ndeps);
    for (uint32_t i = 0; i < ndeps; ++i) {
        IVec v;
        if (!getIVec(cur, v))
            return false;
        key.deps.push_back(std::move(v));
    }
    uint8_t objective, has_box;
    if (!cur.u8(objective) || objective > 1 || !cur.u8(has_box) ||
        has_box > 1)
        return false;
    key.objective = objective ? SearchObjective::BoundedStorage
                              : SearchObjective::ShortestVector;
    key.isg_lo.reset();
    key.isg_hi.reset();
    if (has_box) {
        IVec lo, hi;
        if (!getIVec(cur, lo) || !getIVec(cur, hi))
            return false;
        key.isg_lo = std::move(lo);
        key.isg_hi = std::move(hi);
    }
    if (!cur.i64(key.deadline_ms) || key.deadline_ms < -1)
        return false;
    if (!getIVec(cur, answer.best_uov))
        return false;
    if (!cur.i64(answer.best_objective) ||
        !cur.i64(answer.initial_objective))
        return false;
    uint64_t canon;
    if (!cur.u64(canon))
        return false;
    answer.canonical_deps = static_cast<size_t>(canon);
    uint8_t degraded;
    if (!cur.u8(degraded) || degraded > 1)
        return false;
    answer.degraded = degraded != 0;
    uint32_t reason_len;
    if (!cur.u32(reason_len) || reason_len > 4096 ||
        !cur.bytes(answer.degraded_reason, reason_len))
        return false;
    uint32_t nrows;
    if (!cur.u32(nrows) || nrows > 100'000)
        return false;
    answer.cert.clear();
    answer.cert.reserve(nrows);
    for (uint32_t i = 0; i < nrows; ++i) {
        uint32_t len;
        if (!cur.u32(len) || len > 100'000)
            return false;
        std::vector<int64_t> row(len);
        for (uint32_t j = 0; j < len; ++j)
            if (!cur.i64(row[j]))
                return false;
        answer.cert.push_back(std::move(row));
    }
    // Trailing junk inside a checksummed payload means version drift,
    // not a torn write; reject it the same way (the caller truncates).
    return cur.done();
}

ResultStore::ResultStore(std::string path, MetricsRegistry *metrics)
    : _path(std::move(path))
{
    if (metrics != nullptr) {
        _hits_metric = &metrics->counter("service.store.hits");
        _appends_metric = &metrics->counter("service.store.appends");
        _append_errors_metric =
            &metrics->counter("service.store.append_errors");
        _loaded_metric = &metrics->counter("service.store.loaded");
        _truncated_metric =
            &metrics->counter("service.store.truncated_bytes");
        _compactions_metric =
            &metrics->counter("service.store.compactions");
        _reclaimed_metric =
            &metrics->counter("service.store.reclaimed_bytes");
    }
    open();
    if (_loaded_metric != nullptr)
        _loaded_metric->inc(_stats.records_loaded);
    if (_truncated_metric != nullptr)
        _truncated_metric->inc(_stats.truncated_bytes);
}

ResultStore::~ResultStore()
{
    if (_fd >= 0)
        ::close(_fd);
}

void
ResultStore::writeAll(int fd, const char *data, size_t len)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = ::pwrite(fd, data + off, len - off,
                             static_cast<off_t>(_end + off));
        UOV_REQUIRE(n > 0, "result store '"
                               << _path << "': write failed: "
                               << std::strerror(errno));
        off += static_cast<size_t>(n);
    }
}

void
ResultStore::open()
{
    failpoint::fire("store_open");
    _fd = ::open(_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    UOV_REQUIRE(_fd >= 0, "cannot open result store '"
                              << _path
                              << "': " << std::strerror(errno));

    // Slurp the whole log: stores are answer-sized, not trace-sized,
    // and a full scan is the validation pass anyway.
    std::string buf;
    {
        char chunk[1 << 16];
        ssize_t n;
        while ((n = ::read(_fd, chunk, sizeof(chunk))) > 0)
            buf.append(chunk, static_cast<size_t>(n));
        UOV_REQUIRE(n == 0, "cannot read result store '"
                                << _path
                                << "': " << std::strerror(errno));
    }

    if (buf.empty()) {
        // Fresh store: publish the header before the first append so
        // a crash between creation and first use leaves a valid file.
        _end = 0;
        writeAll(_fd, kMagic, kMagicBytes);
        ::fsync(_fd);
        _end = kMagicBytes;
        _stats.file_bytes = _end;
        return;
    }
    // A file shorter than the magic is a torn creation; anything else
    // that does not start with our magic is a foreign file we refuse
    // to clobber.
    if (buf.size() >= kMagicBytes &&
        std::memcmp(buf.data(), kMagic, kMagicBytes) != 0)
        throw UovUserError("'" + _path +
                           "' is not a uov result store (bad magic); "
                           "refusing to overwrite it");

    size_t pos = kMagicBytes;
    bool torn = false;
    while (pos < buf.size()) {
        if (pos + kFrameBytes > buf.size()) {
            torn = true;
            break;
        }
        uint32_t len = 0;
        for (int i = 0; i < 4; ++i)
            len |= static_cast<uint32_t>(
                       static_cast<unsigned char>(buf[pos + i]))
                   << (8 * i);
        uint64_t checksum = 0;
        for (int i = 0; i < 8; ++i)
            checksum |= static_cast<uint64_t>(static_cast<unsigned char>(
                            buf[pos + 4 + i]))
                        << (8 * i);
        if (len == 0 || len > kMaxPayloadBytes ||
            pos + kFrameBytes + len > buf.size()) {
            torn = true;
            break;
        }
        std::string payload =
            buf.substr(pos + kFrameBytes, len);
        if (fnv1a(payload.data(), payload.size()) != checksum) {
            torn = true;
            break;
        }
        Record rec;
        if (!decodePayload(payload, rec.key, rec.answer)) {
            torn = true;
            break;
        }
        _index[rec.key] = _log.size();
        _log.push_back(std::move(rec));
        pos += kFrameBytes + len;
    }
    if (buf.size() < kMagicBytes) {
        torn = true;
        pos = 0;
    }
    _stats.records_loaded = _log.size();
    if (torn) {
        _stats.truncated_bytes = buf.size() - pos;
        UOV_LOG_WARN("result store '"
                     << _path << "': torn tail, truncating "
                     << _stats.truncated_bytes << " byte(s) after "
                     << _log.size() << " intact record(s)");
        // Repair by republishing the validated prefix atomically --
        // tmp+rename, the JitCompiler object-cache discipline -- so a
        // crash mid-repair cannot make things worse.
        publishSegment(_log);
    } else {
        _end = buf.size();
    }
    _stats.entries = _index.size();
    _stats.file_bytes = _end;
}

void
ResultStore::publishSegment(const std::vector<Record> &records)
{
    std::string tmp = _path + ".tmp." +
                      std::to_string(static_cast<long>(::getpid()));
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    UOV_REQUIRE(fd >= 0, "cannot write result store segment '"
                             << tmp << "': " << std::strerror(errno));
    std::string out(kMagic, kMagicBytes);
    for (const Record &rec : records) {
        std::string payload = encodePayload(rec.key, rec.answer);
        putU32(out, static_cast<uint32_t>(payload.size()));
        putU64(out, fnv1a(payload.data(), payload.size()));
        out += payload;
    }
    size_t off = 0;
    while (off < out.size()) {
        ssize_t n = ::write(fd, out.data() + off, out.size() - off);
        if (n <= 0) {
            ::close(fd);
            ::unlink(tmp.c_str());
            throw UovUserError("cannot write result store segment '" +
                               tmp + "': " + std::strerror(errno));
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        ::unlink(tmp.c_str());
        throw UovUserError("cannot sync result store segment '" + tmp +
                           "': " + std::strerror(errno));
    }
    if (::rename(tmp.c_str(), _path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        throw UovUserError("cannot publish result store '" + _path +
                           "': " + std::strerror(errno));
    }
    if (_fd >= 0)
        ::close(_fd);
    _fd = ::open(_path.c_str(), O_RDWR | O_CLOEXEC);
    UOV_REQUIRE(_fd >= 0, "cannot reopen result store '"
                              << _path
                              << "': " << std::strerror(errno));
    _end = out.size();
    _stats.file_bytes = _end;
}

bool
ResultStore::append(const CanonicalKey &key, const ServiceAnswer &answer)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto fail = [&] {
        ++_stats.append_errors;
        if (_append_errors_metric != nullptr)
            _append_errors_metric->inc();
        return false;
    };
    if (_broken)
        return fail();

    std::string payload = encodePayload(key, answer);
    std::string rec;
    rec.reserve(kFrameBytes + payload.size());
    putU32(rec, static_cast<uint32_t>(payload.size()));
    putU64(rec, fnv1a(payload.data(), payload.size()));
    rec += payload;

    try {
        failpoint::fire("store_write");
        writeAll(_fd, rec.data(), rec.size());
        failpoint::fire("store_fsync");
        UOV_REQUIRE(::fsync(_fd) == 0,
                    "result store '" << _path << "': fsync failed: "
                                     << std::strerror(errno));
    } catch (const UovError &e) {
        // Roll the partial record back before releasing the mutex:
        // the log must never carry a torn record in its middle, or a
        // later acknowledged append would be stranded behind it.  An
        // fsync-path failure also rolls back -- the bytes may or may
        // not be durable, so the only honest acknowledgement is none.
        UOV_LOG_WARN("result store '" << _path
                                      << "': append rolled back: "
                                      << e.what());
        if (::ftruncate(_fd, static_cast<off_t>(_end)) != 0) {
            UOV_LOG_WARN("result store '"
                         << _path
                         << "': rollback ftruncate failed, disabling "
                            "appends: "
                         << std::strerror(errno));
            _broken = true;
        }
        return fail();
    }

    _end += rec.size();
    _stats.file_bytes = _end;
    _index[key] = _log.size();
    _log.push_back(Record{key, answer});
    _stats.entries = _index.size();
    ++_stats.appends;
    if (_appends_metric != nullptr)
        _appends_metric->inc();
    return true;
}

std::optional<ServiceAnswer>
ResultStore::lookup(const CanonicalKey &key)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_stats.lookups;
    auto it = _index.find(key);
    if (it == _index.end())
        return std::nullopt;
    ++_stats.hits;
    if (_hits_metric != nullptr)
        _hits_metric->inc();
    return _log[it->second].answer;
}

void
ResultStore::forEach(const std::function<void(const CanonicalKey &,
                                              const ServiceAnswer &)>
                         &fn) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (size_t i = 0; i < _log.size(); ++i) {
        auto it = _index.find(_log[i].key);
        if (it != _index.end() && it->second == i)
            fn(_log[i].key, _log[i].answer);
    }
}

void
ResultStore::forEachRaw(const std::function<void(const CanonicalKey &,
                                                 const ServiceAnswer &)>
                            &fn) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (const Record &rec : _log)
        fn(rec.key, rec.answer);
}

uint64_t
ResultStore::compact()
{
    std::lock_guard<std::mutex> lock(_mutex);
    uint64_t before = _end;
    std::vector<Record> live;
    live.reserve(_index.size());
    for (size_t i = 0; i < _log.size(); ++i) {
        auto it = _index.find(_log[i].key);
        if (it != _index.end() && it->second == i)
            live.push_back(_log[i]);
    }
    publishSegment(live);
    _log = std::move(live);
    _index.clear();
    for (size_t i = 0; i < _log.size(); ++i)
        _index[_log[i].key] = i;
    _stats.entries = _index.size();
    uint64_t reclaimed = before - _end;
    _stats.compactions += 1;
    _stats.reclaimed_bytes += reclaimed;
    if (_compactions_metric != nullptr)
        _compactions_metric->inc();
    if (_reclaimed_metric != nullptr)
        _reclaimed_metric->inc(reclaimed);
    return reclaimed;
}

size_t
ResultStore::preload(ResultCache &cache) const
{
    size_t count = 0;
    forEach([&](const CanonicalKey &key, const ServiceAnswer &answer) {
        cache.insert(key, answer);
        ++count;
    });
    return count;
}

ResultStore::Stats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _stats;
}

} // namespace service
} // namespace uov
