/**
 * @file
 * uovc: the storage-mapping compiler driver.
 *
 * Reads a loop-nest description (file argument or stdin; format in
 * src/driver/nest_parser.h), runs dependence analysis and the UOV
 * search, prints the storage plan, and optionally emits compilable C.
 *
 *   $ ./uovc nest.txt
 *   $ ./uovc --emit-c --tiled 8x64 nest.txt > kernel.c
 *   $ ./uovc --objective storage --layout blocked nest.txt
 *   $ ./uovc --multi nest.txt        # per-array plans, multi-statement
 */

#include <dlfcn.h>

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/multi.h"
#include "analysis/pipeline.h"
#include "codegen/codegen.h"
#include "driver/nest_parser.h"
#include "support/error.h"

using namespace uov;

namespace {

void
usage()
{
    std::cout <<
        "usage: uovc [options] [nest-file]\n"
        "  reads the nest from the file, or stdin when omitted\n"
        "options:\n"
        "  --objective shortest|storage   UOV search objective\n"
        "  --layout interleaved|blocked   non-prime OV layout\n"
        "  --emit-c                       print generated C\n"
        "  --tiled TxS                    skewed-tiled codegen\n"
        "  --run                          compile the generated C with\n"
        "                                 the host cc, dlopen it, run\n"
        "                                 it, and print a checksum\n"
        "  --multi                        per-array multi-statement plan\n"
        "  --example                      print an example nest file\n";
}

const char *kExample =
    "# 5-point stencil over time (paper Section 5)\n"
    "nest stencil5\n"
    "bounds 1..18 0..99\n"
    "statement B\n"
    "  write B[0,0]\n"
    "  read  B[-1,-2]\n"
    "  read  B[-1,-1]\n"
    "  read  B[-1,0]\n"
    "  read  B[-1,1]\n"
    "  read  B[-1,2]\n";

} // namespace

int
main(int argc, char **argv)
{
    PlanOptions popts;
    bool emit_c = false, multi = false, run = false;
    std::vector<int64_t> tiles;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--example") {
            std::cout << kExample;
            return 0;
        } else if (a == "--objective") {
            std::string v = i + 1 < argc ? argv[++i] : "";
            if (v == "shortest") {
                popts.objective = SearchObjective::ShortestVector;
            } else if (v == "storage") {
                popts.objective = SearchObjective::BoundedStorage;
            } else {
                std::cerr << "bad --objective '" << v << "'\n";
                return 2;
            }
        } else if (a == "--layout") {
            std::string v = i + 1 < argc ? argv[++i] : "";
            if (v == "interleaved") {
                popts.layout = ModLayout::Interleaved;
            } else if (v == "blocked") {
                popts.layout = ModLayout::Blocked;
            } else {
                std::cerr << "bad --layout '" << v << "'\n";
                return 2;
            }
        } else if (a == "--emit-c") {
            emit_c = true;
        } else if (a == "--run") {
            run = true;
        } else if (a == "--multi") {
            multi = true;
        } else if (a == "--tiled") {
            std::string v = i + 1 < argc ? argv[++i] : "";
            auto x = v.find('x');
            if (x == std::string::npos) {
                std::cerr << "bad --tiled '" << v << "', want TxS\n";
                return 2;
            }
            tiles = {std::stoll(v.substr(0, x)),
                     std::stoll(v.substr(x + 1))};
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "unknown option '" << a << "'\n";
            usage();
            return 2;
        } else {
            path = a;
        }
    }

    try {
        LoopNest nest = [&] {
            if (path.empty())
                return parseNest(std::cin);
            std::ifstream f(path);
            UOV_REQUIRE(f.good(), "cannot open '" << path << "'");
            return parseNest(f);
        }();

        std::cerr << "parsed: " << nest.str() << "\n";

        if (multi) {
            MultiNestPlan plan = planMultiStatement(nest, popts.layout);
            std::cout << plan.str() << "\n";
            return 0;
        }

        MappingPlan plan = planStorageMapping(nest, 0, popts);
        std::cout << plan.str() << "\n";

        if (emit_c || run) {
            CodegenOptions copts;
            copts.storage = GenStorage::OvMapped;
            if (!tiles.empty()) {
                copts.schedule = GenSchedule::SkewedTiled;
                copts.tile_sizes = tiles;
            }
            GeneratedCode code = generateC(nest, plan, copts);
            if (emit_c)
                std::cout << "\n" << code.source;
            if (run) {
                auto dir = std::filesystem::temp_directory_path() /
                           ("uovc_" + nest.name());
                std::filesystem::create_directories(dir);
                std::string so =
                    compileToSharedObject(code, dir.string());
                void *handle =
                    dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
                UOV_REQUIRE(handle, "dlopen failed: " << dlerror());
                using KernelFn = void (*)(double *);
                auto fn = reinterpret_cast<KernelFn>(
                    dlsym(handle, code.function_name.c_str()));
                UOV_REQUIRE(fn, "dlsym failed: " << dlerror());
                std::vector<double> out(static_cast<size_t>(
                    nest.hi()[1] - nest.lo()[1] + 1));
                fn(out.data());
                double checksum = 0;
                for (double v : out)
                    checksum += v;
                std::cout << "ran " << so << ": output row of "
                          << out.size() << " values, checksum "
                          << checksum << "\n";
                dlclose(handle);
            }
        }
        return 0;
    } catch (const UovError &e) {
        std::cerr << "uovc: " << e.what() << "\n";
        return 1;
    }
}
