/**
 * @file
 * Ablation for Section 3.2's design choices: the priority queue vs a
 * FIFO worklist (time-to-best-bound), the quality of the trivial
 * initial UOV vs the searched optimum, and the cost of the exhaustive
 * reference search.
 */

#include "bench_common.h"

#include "core/greedy.h"
#include "core/search.h"
#include "core/storage_count.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Section 3.2 ablations (priority queue, initial "
                  "UOV, exhaustive reference)");

    std::vector<std::pair<std::string, Stencil>> zoo = {
        {"simple (Fig 1)", stencils::simpleExample()},
        {"3-vector (Fig 2)", stencils::threeVector()},
        {"5-point (Fig 5)", stencils::fivePoint()},
        {"9-point", Stencil({IVec{1, -4}, IVec{1, -3}, IVec{1, -2},
                             IVec{1, -1}, IVec{1, 0}, IVec{1, 1},
                             IVec{1, 2}, IVec{1, 3}, IVec{1, 4}})},
        {"asymmetric", Stencil({IVec{1, 3}, IVec{1, -2}, IVec{2, 1}})},
        {"heat3d", stencils::heat3D()},
    };

    Table t("Priority queue vs FIFO worklist (shortest objective)");
    t.header({"stencil", "uov", "pq visits-to-best", "fifo "
              "visits-to-best", "pq visited", "fifo visited"});
    for (const auto &[label, s] : zoo) {
        SearchResult pq =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        SearchOptions fo;
        fo.use_priority_queue = false;
        SearchResult fifo =
            BranchBoundSearch(s, SearchObjective::ShortestVector, fo)
                .run();
        t.addRow()
            .cell(label)
            .cell(pq.best_uov.str())
            .cell(pq.stats.visits_to_best)
            .cell(fifo.stats.visits_to_best)
            .cell(pq.stats.visited)
            .cell(fifo.stats.visited);
    }
    bench::emit(t, opt);

    Table b("Bound shrinking (Section 3.2.1's 'reset the bound') on "
            "vs off");
    b.header({"stencil", "visited (shrinking)", "visited (fixed "
              "radius)", "same optimum"});
    for (const auto &[label, s] : zoo) {
        SearchResult on =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        SearchOptions no_shrink;
        no_shrink.disable_bound_shrinking = true;
        SearchResult off = BranchBoundSearch(
                               s, SearchObjective::ShortestVector,
                               no_shrink)
                               .run();
        b.addRow()
            .cell(label)
            .cell(on.stats.visited)
            .cell(off.stats.visited)
            .cell(on.best_objective == off.best_objective ? "yes"
                                                          : "NO");
    }
    bench::emit(b, opt);

    Table i("Initial UOV (sum of V) vs searched optimum: storage over "
            "a 64 x 4096 ISG");
    i.header({"stencil", "initial uov", "cells(initial)", "best uov",
              "cells(best)", "saving"});
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{64, 4096});
    for (const auto &[label, s] : zoo) {
        if (s.dim() != 2)
            continue;
        IVec initial = s.initialUov();
        SearchResult best =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        int64_t c0 = storageCellCount(initial, isg);
        int64_t c1 = storageCellCount(best.best_uov, isg);
        i.addRow()
            .cell(label)
            .cell(initial.str())
            .cell(formatCount(c0))
            .cell(best.best_uov.str())
            .cell(formatCount(c1))
            .cell(formatDouble(static_cast<double>(c0) /
                                   static_cast<double>(c1),
                               2) +
                  "x");
    }
    bench::emit(i, opt);

    Table e("Branch-and-bound vs exhaustive vs greedy descent");
    e.header({"stencil", "b&b visited", "exhaustive visited",
              "b&b == exhaustive", "greedy |uov|^2", "greedy probes",
              "greedy optimal"});
    for (const auto &[label, s] : zoo) {
        SearchResult bb =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        SearchResult ex =
            exhaustiveUovSearch(s, SearchObjective::ShortestVector);
        GreedyResult greedy = greedyUovSearch(s);
        e.addRow()
            .cell(label)
            .cell(bb.stats.visited)
            .cell(ex.stats.visited)
            .cell(bb.best_objective == ex.best_objective ? "yes"
                                                         : "NO")
            .cell(greedy.objective)
            .cell(greedy.probes)
            .cell(greedy.objective == bb.best_objective ? "yes" : "no");
    }
    bench::emit(e, opt);
    return 0;
}
