/**
 * @file
 * The telemetry plane's service-level acceptance tests: arming the
 * plane must not change a single response byte, the flight recorder
 * must hold a digest (with a matching trace id) for every degraded,
 * shed, or error response, the SLO tracker and classification
 * counters must reconcile with the batch, and the periodic store
 * compaction hook must fire on schedule without disturbing answers.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "fuzz/workload.h"
#include "service/executor.h"
#include "service/store.h"
#include "support/logging.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/slo.h"
#include "telemetry/trace_context.h"

namespace uov {
namespace service {
namespace {

namespace fs = std::filesystem;

using telemetry::FlightDigest;

/** Small search budget: replay invariants are size-independent. */
constexpr uint64_t kVisitCap = 2'000;

ServiceOptions
cappedOptions()
{
    ServiceOptions opt;
    opt.max_visits = kVisitCap;
    return opt;
}

/** Per-test scratch file, removed on destruction. */
struct ScratchPath
{
    std::string path;
    explicit ScratchPath(const std::string &tag)
        : path((fs::temp_directory_path() /
                ("uov-admin-test-" + tag + "-" +
                 std::to_string(static_cast<long>(::getpid()))))
                   .string())
    {
        std::error_code ec;
        fs::remove(path, ec);
    }
    ~ScratchPath()
    {
        std::error_code ec;
        fs::remove(path, ec);
    }
};

/**
 * A mixed replay: a duplicate-heavy fuzz workload plus hand-written
 * lines covering every outcome class -- zero-deadline degradation,
 * parse errors, and plain optimal answers.
 */
std::vector<Request>
mixedBatch(size_t fuzz_requests)
{
    fuzz::WorkloadOptions wopt;
    wopt.requests = fuzz_requests;
    wopt.distinct = 12;
    wopt.seed = 0xAD317;
    std::vector<Request> reqs = fuzz::makeWorkload(wopt);

    std::istringstream extra(
        "query shortest deadline_ms 0 deps [1,0] [0,1] [1,1]\n"
        "query shortest deadline_ms -2 deps [1,0]\n" // parse error
        "malformed\n"
        "query storage deadline_ms 0 bounds 0..7 0..7 "
        "deps [1,-1] [1,0] [1,1]\n");
    for (Request &r : parseRequests(extra)) {
        r.index = reqs.size() + 1;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

/** The " trace_id=<16 hex>" suffix token, or "" when absent. */
std::string
traceToken(const std::string &response)
{
    size_t pos = response.rfind(" trace_id=");
    if (pos == std::string::npos)
        return "";
    return response.substr(pos + 10);
}

TEST(ClassifyResponse, PartitionsTheResponseSpace)
{
    EXPECT_EQ(classifyResponse("error 3 bad deadline"),
              FlightDigest::Outcome::Error);
    EXPECT_EQ(classifyResponse(
                  "answer 1 best=(1, 1) value=2 degraded=shed"),
              FlightDigest::Outcome::Shed);
    EXPECT_EQ(classifyResponse("answer 2 best=(1, 1) value=2 "
                               "degraded=deadline cert=a"),
              FlightDigest::Outcome::Degraded);
    EXPECT_EQ(classifyResponse(
                  "answer 4 best=(1, 1) value=2 initial=4"),
              FlightDigest::Outcome::Optimal);
    // "shed" must be the whole token, not a prefix match.
    EXPECT_EQ(classifyResponse("answer 5 x degraded=shedlike"),
              FlightDigest::Outcome::Degraded);
}

TEST(AdminReplay, ArmedPlaneIsByteIdenticalToBaseline)
{
    std::vector<Request> reqs = mixedBatch(400);

    std::vector<std::string> baseline;
    {
        MetricsRegistry metrics;
        QueryService svc(cappedOptions(), metrics);
        ThreadPool pool(4);
        baseline = runBatch(svc, reqs, pool);
    }

    telemetry::FlightRecorder flight(1024);
    telemetry::SloTracker slo;
    TelemetryPlane plane;
    plane.flight = &flight;
    plane.slo = &slo;
    plane.trace_ids = false; // observation only: bytes must not move

    MetricsRegistry metrics;
    QueryService svc(cappedOptions(), metrics);
    ThreadPool pool(4);
    std::vector<std::string> armed =
        runBatch(svc, reqs, pool, nullptr, &plane);

    ASSERT_EQ(armed.size(), baseline.size());
    for (size_t i = 0; i < armed.size(); ++i)
        ASSERT_EQ(armed[i], baseline[i]) << "request " << (i + 1);

    // The plane observed the whole batch even though it changed
    // nothing: one digest and one SLO sample per request.
    EXPECT_EQ(flight.recorded(), reqs.size());
    EXPECT_EQ(slo.report().total, reqs.size());

    // Metric reconciliation is unchanged by the plane: every request
    // that reaches the service (parse errors never do) performs
    // exactly one cache lookup, and the outcome counters partition
    // the whole batch.
    size_t parse_errors = 0;
    for (const Request &r : reqs)
        if (!r.error.empty())
            ++parse_errors;
    EXPECT_EQ(metrics.counter("service.requests").value(),
              reqs.size() - parse_errors);
    auto st = svc.cacheStats();
    EXPECT_EQ(st.hits + st.misses, reqs.size() - parse_errors);
    EXPECT_EQ(metrics.counter("service.optimal").value() +
                  metrics.counter("service.degraded").value() +
                  metrics.counter("service.request_errors").value(),
              reqs.size());
}

TEST(AdminReplay, FlightHoldsEveryNonOptimalResponseWithItsTraceId)
{
    std::vector<Request> reqs = mixedBatch(120);

    telemetry::FlightRecorder flight(1024); // larger than the batch
    telemetry::SloTracker slo;
    TelemetryPlane plane;
    plane.flight = &flight;
    plane.slo = &slo;
    plane.trace_ids = true;

    MetricsRegistry metrics;
    QueryService svc(cappedOptions(), metrics);
    ThreadPool pool(4);
    std::vector<std::string> responses =
        runBatch(svc, reqs, pool, nullptr, &plane);

    std::vector<FlightDigest> digests = flight.snapshot();
    ASSERT_EQ(digests.size(), reqs.size());
    std::map<uint64_t, const FlightDigest *> by_request;
    for (const FlightDigest &d : digests)
        by_request[d.request_index] = &d;

    size_t non_optimal = 0;
    for (size_t i = 0; i < responses.size(); ++i) {
        // Opted-in responses all carry a trace id token...
        std::string token = traceToken(responses[i]);
        ASSERT_EQ(token.size(), 16u) << responses[i];

        auto it = by_request.find(i + 1);
        ASSERT_NE(it, by_request.end()) << "no digest for " << (i + 1);
        const FlightDigest &d = *it->second;

        // ...and the token is exactly the digest's trace id, so a
        // flight row, a log line, and a response line correlate.
        EXPECT_EQ(token, traceIdHex(d.trace_id))
            << responses[i];

        // The digest's outcome matches the classifier (the trace_id
        // token is appended after classification, so strip it).
        std::string bare =
            responses[i].substr(0, responses[i].rfind(" trace_id="));
        EXPECT_EQ(d.outcome, classifyResponse(bare)) << responses[i];
        if (d.outcome != FlightDigest::Outcome::Optimal) {
            ++non_optimal;
            // Error digests explain themselves.
            if (d.outcome == FlightDigest::Outcome::Error)
                EXPECT_FALSE(d.causeStr().empty()) << responses[i];
        }
    }
    // The hand-written tail guarantees at least one degraded line and
    // two error lines survived into the flight ring.
    EXPECT_GE(non_optimal, 3u);

    // SLO ratios agree with the recorder.
    telemetry::SloTracker::Report r = slo.report();
    EXPECT_EQ(r.total, reqs.size());
    EXPECT_EQ(r.errors,
              metrics.counter("service.request_errors").value());
}

TEST(AdminReplay, StoreCompactionFiresOnTheAppendSchedule)
{
    ScratchPath scratch("compact-sched");
    ServiceOptions so;
    so.store_path = scratch.path;
    so.store_compact_every = 4;
    MetricsRegistry metrics;
    QueryService svc(so, metrics);
    ASSERT_NE(svc.store(), nullptr);

    // 8 distinct queries -> 8 fresh searches -> 8 store appends ->
    // compactions at appends 4 and 8.
    std::vector<Request> reqs;
    for (int64_t k = 1; k <= 8; ++k) {
        Request r;
        r.index = static_cast<size_t>(k);
        r.deps = {IVec{1, 0}, IVec{k, 1}};
        reqs.push_back(std::move(r));
    }
    ThreadPool pool(1);
    std::vector<std::string> first = runBatch(svc, reqs, pool);
    EXPECT_EQ(svc.searchesExecuted(), reqs.size());

    EXPECT_EQ(svc.store()->stats().compactions, 2u);
    EXPECT_EQ(metrics.counter("service.store.compactions").value(),
              2u);

    // Replaying the same batch appends nothing (cache hits), so the
    // schedule does not advance...
    std::vector<std::string> again = runBatch(svc, reqs, pool);
    EXPECT_EQ(again, first);
    EXPECT_EQ(svc.store()->stats().compactions, 2u);

    // ...and a compacted store still restarts warm, byte-identical,
    // with zero searches.
    {
        ServiceOptions cold = so;
        MetricsRegistry metrics2;
        QueryService svc2(cold, metrics2);
        ThreadPool pool2(2);
        std::vector<std::string> warm = runBatch(svc2, reqs, pool2);
        EXPECT_EQ(warm, first);
        EXPECT_EQ(svc2.searchesExecuted(), 0u);
    }
}

} // namespace
} // namespace service
} // namespace uov
