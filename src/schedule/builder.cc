#include "schedule/builder.h"

#include <algorithm>
#include <sstream>

#include "schedule/legality.h"
#include "support/error.h"

namespace uov {

namespace {

/** Lexicographic positivity of one transformed distance. */
bool
lexPositive(const IVec &v)
{
    for (size_t k = 0; k < v.dim(); ++k) {
        if (v[k] > 0)
            return true;
        if (v[k] < 0)
            return false;
    }
    return false;
}

/** Render an integer list as "a,b,c". */
template <typename Seq>
std::string
joinList(const Seq &seq)
{
    std::ostringstream oss;
    bool first = true;
    for (const auto &x : seq) {
        if (!first)
            oss << ",";
        oss << x;
        first = false;
    }
    return oss.str();
}

} // namespace

ScheduleBuilder::ScheduleBuilder(size_t depth)
    : _depth(depth), _transform(IMatrix::identity(depth)),
      _tiles(depth, 0)
{
    UOV_REQUIRE(depth >= 1,
                "ScheduleBuilder: depth must be >= 1, got " << depth);
}

ScheduleBuilder &
ScheduleBuilder::reorder(const std::vector<size_t> &perm)
{
    UOV_REQUIRE(perm.size() == _depth,
                "reorder: permutation has " << perm.size()
                    << " entries for a depth-" << _depth << " nest");
    std::vector<bool> seen(_depth, false);
    for (size_t k : perm) {
        UOV_REQUIRE(k < _depth && !seen[k],
                    "reorder(" << joinList(perm)
                               << "): not a permutation of 0.."
                               << _depth - 1);
        seen[k] = true;
    }
    IMatrix p(_depth, _depth);
    for (size_t k = 0; k < _depth; ++k)
        p(k, perm[k]) = 1;
    _transform = p * _transform;
    std::vector<int64_t> tiles(_depth);
    for (size_t k = 0; k < _depth; ++k)
        tiles[k] = _tiles[perm[k]];
    _tiles = std::move(tiles);
    _primitives.push_back("reorder(" + joinList(perm) + ")");
    return *this;
}

ScheduleBuilder &
ScheduleBuilder::skew(size_t target, size_t source, int64_t factor)
{
    UOV_REQUIRE(target < _depth && source < _depth && target != source,
                "skew(" << target << "," << source
                        << "): needs two distinct dimensions < "
                        << _depth);
    _transform.addRowMultiple(target, source, factor);
    std::ostringstream oss;
    oss << "skew(" << target << "," << source << "," << factor << ")";
    _primitives.push_back(oss.str());
    return *this;
}

ScheduleBuilder &
ScheduleBuilder::skewToNonNegative(const Stencil &stencil)
{
    UOV_REQUIRE(stencil.dim() == _depth,
                "skewToNonNegative: stencil rank "
                    << stencil.dim() << " != builder depth " << _depth);
    _transform = uov::skewToNonNegative(stencil) * _transform;
    _primitives.push_back("skew_nonneg");
    return *this;
}

ScheduleBuilder &
ScheduleBuilder::split(size_t dim, int64_t size)
{
    UOV_REQUIRE(dim < _depth, "split(" << dim << "): dimension out of "
                                          "range for depth "
                                       << _depth);
    UOV_REQUIRE(size >= 1,
                "split(" << dim << "," << size
                         << "): tile size must be >= 1");
    _tiles[dim] = size;
    std::ostringstream oss;
    oss << "split(" << dim << "," << size << ")";
    _primitives.push_back(oss.str());
    return *this;
}

ScheduleBuilder &
ScheduleBuilder::tile(const std::vector<int64_t> &sizes)
{
    UOV_REQUIRE(sizes.size() == _depth,
                "tile: " << sizes.size() << " sizes for a depth-"
                         << _depth << " nest");
    for (int64_t s : sizes)
        UOV_REQUIRE(s >= 0, "tile: sizes must be >= 0 (0 = untiled), "
                            "got "
                                << s);
    _tiles = sizes;
    _primitives.push_back("tile(" + joinList(sizes) + ")");
    return *this;
}

ScheduleBuilder &
ScheduleBuilder::unroll(int64_t factor)
{
    UOV_REQUIRE(factor >= 1,
                "unroll(" << factor << "): factor must be >= 1");
    _unroll = factor;
    std::ostringstream oss;
    oss << "unroll(" << factor << ")";
    _primitives.push_back(oss.str());
    return *this;
}

ScheduleBuilder &
ScheduleBuilder::unrollJam(int64_t factor)
{
    UOV_REQUIRE(_depth >= 2,
                "unrollJam: needs a nest of depth >= 2, have "
                    << _depth);
    UOV_REQUIRE(factor >= 1,
                "unrollJam(" << factor << "): factor must be >= 1");
    _jam = factor;
    std::ostringstream oss;
    oss << "jam(" << factor << ")";
    _primitives.push_back(oss.str());
    return *this;
}

bool
ScheduleBuilder::tiled() const
{
    return std::any_of(_tiles.begin(), _tiles.end(),
                       [](int64_t s) { return s > 0; });
}

void
ScheduleBuilder::validate(const Stencil &stencil) const
{
    UOV_REQUIRE(_depth >= 1, "ScheduleBuilder: empty builder (use the "
                             "depth constructor)");
    UOV_REQUIRE(stencil.dim() == _depth,
                "validate: stencil rank " << stencil.dim()
                                          << " != builder depth "
                                          << _depth);
    std::vector<IVec> transformed;
    transformed.reserve(stencil.size());
    for (const IVec &v : stencil.deps()) {
        IVec y = _transform * v;
        UOV_REQUIRE(lexPositive(y),
                    "illegal schedule '"
                        << str() << "': dependence " << v.str()
                        << " maps to non-positive " << y.str());
        transformed.push_back(std::move(y));
    }
    if (tiled())
        UOV_REQUIRE(tilingLegal(_transform, stencil),
                    "illegal schedule '"
                        << str()
                        << "': tiling needs component-wise "
                           "non-negative transformed distances "
                           "(skew first)");
    if (_jam > 1)
        UOV_REQUIRE(jamLegal(transformed, _depth - 2, _jam),
                    "illegal schedule '"
                        << str() << "': jam factor " << _jam
                        << " reorders a dependence");
}

bool
ScheduleBuilder::legal(const Stencil &stencil) const
{
    try {
        validate(stencil);
        return true;
    } catch (const UovUserError &) {
        return false;
    }
}

std::unique_ptr<Schedule>
ScheduleBuilder::buildSchedule(const IVec &lo, const IVec &hi) const
{
    UOV_REQUIRE(_depth >= 1 && lo.dim() == _depth &&
                    hi.dim() == _depth,
                "buildSchedule: box rank does not match builder depth "
                    << _depth);
    bool identity = _transform == IMatrix::identity(_depth);
    if (!tiled()) {
        if (identity)
            return std::make_unique<LexSchedule>(
                LexSchedule::identity(_depth));
        return std::make_unique<TransformedSchedule>(_transform,
                                                     str());
    }
    // Untiled dimensions become one tile covering the transformed
    // extent of the box: per row, the extremal value of t_kj * q_j is
    // attained at lo_j or hi_j independently per coordinate.
    std::vector<int64_t> sizes(_depth);
    for (size_t k = 0; k < _depth; ++k) {
        if (_tiles[k] > 0) {
            sizes[k] = _tiles[k];
            continue;
        }
        int64_t min_y = 0, max_y = 0;
        for (size_t j = 0; j < _depth; ++j) {
            int64_t a = _transform(k, j) * lo[j];
            int64_t b = _transform(k, j) * hi[j];
            min_y += std::min(a, b);
            max_y += std::max(a, b);
        }
        sizes[k] = max_y - min_y + 1;
    }
    return std::make_unique<TiledSchedule>(std::move(sizes),
                                           _transform, str());
}

std::optional<LoweredSchedule>
ScheduleBuilder::lower(const Stencil &stencil) const
{
    if (_depth == 0 || stencil.dim() != _depth)
        return std::nullopt;
    bool identity = _transform == IMatrix::identity(_depth);
    if (identity && !tiled()) {
        LoweredSchedule out;
        if (_unroll > 1 || _jam > 1) {
            out.form = LoweredForm::RegisterTiled;
            out.unroll = _unroll;
            out.jam = _jam;
        }
        return out;
    }
    // The emitter's only transformed form: the canonical skew of a
    // 2-D stencil with both dimensions tiled (codegen SkewedTiled).
    if (_depth != 2 || _unroll > 1 || _jam > 1)
        return std::nullopt;
    if (_tiles[0] < 1 || _tiles[1] < 1)
        return std::nullopt;
    try {
        if (!(_transform == uov::skewToNonNegative(stencil)))
            return std::nullopt;
    } catch (const UovUserError &) {
        return std::nullopt;
    }
    LoweredSchedule out;
    out.form = LoweredForm::SkewedTiled;
    out.tile_sizes = {_tiles[0], _tiles[1]};
    return out;
}

std::string
ScheduleBuilder::str() const
{
    if (_primitives.empty())
        return "lex";
    std::ostringstream oss;
    for (size_t i = 0; i < _primitives.size(); ++i) {
        if (i > 0)
            oss << ";";
        oss << _primitives[i];
    }
    return oss.str();
}

bool
ScheduleBuilder::operator==(const ScheduleBuilder &o) const
{
    return _depth == o._depth && _transform == o._transform &&
           _tiles == o._tiles && _unroll == o._unroll &&
           _jam == o._jam;
}

} // namespace uov
