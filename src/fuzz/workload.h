/**
 * @file
 * Replayable service workloads drawn from the fuzz generators.
 *
 * Benchmarks (bench_service_throughput, bench_cluster_throughput),
 * the kill-9 recovery drill, and load tests all need the same thing:
 * a high-volume, duplicate-heavy request stream that is a pure
 * function of its seed, so a run can be replayed byte-for-byte on
 * another machine or after a crash.  Distinct queries come from the
 * fuzz case generator; the request list samples them (~8 requests per
 * distinct query by default, matching the production duplicate
 * ratio the result cache exists for).
 */

#ifndef UOV_FUZZ_WORKLOAD_H
#define UOV_FUZZ_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "service/executor.h"

namespace uov {
namespace fuzz {

struct WorkloadOptions
{
    size_t requests = 2000; ///< total request count
    size_t distinct = 24;   ///< distinct underlying queries
    uint64_t seed = 42;     ///< replay handle: same seed, same batch
    int64_t deadline_ms = -1; ///< per-request deadline for every line
};

/**
 * Generate the workload @p opt denotes.  Deterministic: the returned
 * requests (deps, objectives, bounds, order, indices) depend only on
 * the options.  Objectives alternate shortest/storage across the
 * distinct pool.
 */
std::vector<service::Request> makeWorkload(const WorkloadOptions &opt);

/**
 * Render one solve request back into its protocol line
 * ("query shortest deadline_ms 5 deps [1,0] ..."), the inverse of
 * parseRequestLine -- so a generated workload can be written to a
 * file and replayed through uovd --input.
 */
std::string renderRequest(const service::Request &request);

} // namespace fuzz
} // namespace uov

#endif // UOV_FUZZ_WORKLOAD_H
