#include "service/result_cache.h"

#include <bit>

namespace uov {
namespace service {

ResultCache::ResultCache(size_t max_bytes, size_t shards,
                         MetricsRegistry *metrics)
{
    if (shards < 1)
        shards = 1;
    if (shards > 256)
        shards = 256;
    shards = std::bit_ceil(shards);
    _per_shard_bytes = max_bytes / shards;
    _shards.reserve(shards);
    for (size_t i = 0; i < shards; ++i)
        _shards.push_back(std::make_unique<Shard>());
    if (metrics) {
        _hits = &metrics->counter("service.cache.hits");
        _misses = &metrics->counter("service.cache.misses");
        _evictions = &metrics->counter("service.cache.evictions");
        _bytes_gauge = &metrics->gauge("service.cache.bytes");
    }
}

ResultCache::Shard &
ResultCache::shardOf(const CanonicalKey &key)
{
    // The low hash bits pick the shard; the hash-map inside the shard
    // still sees the full hash, so the stripe costs no distribution.
    return *_shards[key.hash() & (_shards.size() - 1)];
}

std::optional<ServiceAnswer>
ResultCache::lookup(const CanonicalKey &key)
{
    Shard &shard = shardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.lookups;
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.misses;
        if (_misses)
            _misses->inc();
        return std::nullopt;
    }
    ++shard.hits;
    if (_hits)
        _hits->inc();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->answer;
}

void
ResultCache::insert(const CanonicalKey &key, const ServiceAnswer &answer)
{
    size_t bytes = key.byteSize() + answer.byteSize() +
                   2 * sizeof(void *); // list + index node overhead
    if (bytes > _per_shard_bytes)
        return; // larger than a whole shard: not cacheable
    Shard &shard = shardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        // Racing computations of the same key produce identical
        // answers (determinism contract); just refresh recency.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    while (shard.bytes + bytes > _per_shard_bytes && !shard.lru.empty()) {
        Entry &cold = shard.lru.back();
        shard.bytes -= cold.bytes;
        if (_bytes_gauge)
            _bytes_gauge->sub(static_cast<int64_t>(cold.bytes));
        shard.index.erase(cold.key);
        shard.lru.pop_back();
        ++shard.evictions;
        if (_evictions)
            _evictions->inc();
    }
    shard.lru.push_front(Entry{key, answer, bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    ++shard.insertions;
    if (_bytes_gauge)
        _bytes_gauge->add(static_cast<int64_t>(bytes));
}

ResultCache::Stats
ResultCache::stats() const
{
    Stats s;
    for (const auto &shard : _shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        s.lookups += shard->lookups;
        s.hits += shard->hits;
        s.misses += shard->misses;
        s.insertions += shard->insertions;
        s.evictions += shard->evictions;
        s.entries += shard->lru.size();
        s.bytes += shard->bytes;
    }
    return s;
}

} // namespace service
} // namespace uov
