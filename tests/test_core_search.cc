/**
 * @file
 * Unit tests for the branch-and-bound UOV search: agreement with the
 * exhaustive oracle, the paper's examples, pruning soundness, the
 * FIFO-vs-priority-queue ablation, and the visit cap.
 */

#include <gtest/gtest.h>

#include "core/search.h"
#include "core/storage_count.h"
#include "core/uov.h"
#include "support/error.h"

namespace uov {
namespace {

TEST(Search, SimpleExampleFindsUnitDiagonal)
{
    BranchBoundSearch search(stencils::simpleExample(),
                             SearchObjective::ShortestVector);
    SearchResult r = search.run();
    EXPECT_EQ(r.best_uov, (IVec{1, 1}));
    EXPECT_EQ(r.best_objective, 2);
    EXPECT_EQ(r.initial_objective, 8); // |(2,2)|^2
    EXPECT_GE(r.stats.bound_updates, 1u);
}

TEST(Search, FivePointFindsPaperUov)
{
    BranchBoundSearch search(stencils::fivePoint(),
                             SearchObjective::ShortestVector);
    SearchResult r = search.run();
    EXPECT_EQ(r.best_uov, (IVec{2, 0}));
    EXPECT_EQ(r.best_objective, 4);
    EXPECT_EQ(r.initial_objective, 25); // |(5,0)|^2
}

TEST(Search, ResultIsAlwaysACertifiedUov)
{
    for (const Stencil &s :
         {stencils::simpleExample(), stencils::threeVector(),
          stencils::fivePoint(), stencils::heat3D()}) {
        BranchBoundSearch search(s, SearchObjective::ShortestVector);
        SearchResult r = search.run();
        UovOracle oracle(s);
        EXPECT_TRUE(oracle.isUov(r.best_uov))
            << s.str() << " -> " << r.best_uov.str();
        EXPECT_LE(r.best_objective, r.initial_objective);
    }
}

TEST(Search, MatchesExhaustiveOnShortestObjective)
{
    for (const Stencil &s :
         {stencils::simpleExample(), stencils::threeVector(),
          stencils::fivePoint(),
          Stencil({IVec{1, 3}, IVec{1, -3}}),
          Stencil({IVec{2, 1}, IVec{1, 2}}),
          Stencil({IVec{1, 0}, IVec{0, 1}}),
          Stencil({IVec{1, -1}, IVec{0, 1}})}) {
        SearchResult bb =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        SearchResult ex =
            exhaustiveUovSearch(s, SearchObjective::ShortestVector);
        EXPECT_EQ(bb.best_objective, ex.best_objective) << s.str();
    }
}

TEST(Search, MatchesExhaustiveIn3D)
{
    Stencil s = stencils::heat3D();
    SearchResult bb =
        BranchBoundSearch(s, SearchObjective::ShortestVector).run();
    SearchResult ex =
        exhaustiveUovSearch(s, SearchObjective::ShortestVector);
    EXPECT_EQ(bb.best_objective, ex.best_objective);
    EXPECT_EQ(bb.best_objective, 4); // (2,0,0)
}

TEST(Search, BoundedStorageFigure3PrefersLongerVector)
{
    // Figure 3: with the parallelogram ISG the best-storage UOV can be
    // longer than the shortest one.  The stencil of Figure 2/3 is not
    // printed, so we verify the *mechanism* on a stencil where both
    // (3,0)-like and (3,1)-like candidates are UOVs.
    Stencil s({IVec{1, 0}, IVec{1, 1}, IVec{2, 1}});
    Polyhedron isg = Polyhedron::fromVertices2D(
        {IVec{1, 1}, IVec{1, 6}, IVec{10, 4}, IVec{10, 9}});

    SearchOptions opts;
    opts.isg = isg;
    SearchResult storage_best =
        BranchBoundSearch(s, SearchObjective::BoundedStorage, opts).run();
    SearchResult shortest =
        BranchBoundSearch(s, SearchObjective::ShortestVector).run();

    // Both must be genuine UOVs.
    UovOracle oracle(s);
    EXPECT_TRUE(oracle.isUov(storage_best.best_uov));
    EXPECT_TRUE(oracle.isUov(shortest.best_uov));

    // The storage objective is at least as good as the shortest
    // vector's storage, and the exhaustive search agrees.
    int64_t shortest_storage = storageCellCount(shortest.best_uov, isg);
    EXPECT_LE(storage_best.best_objective, shortest_storage);
    SearchResult ex =
        exhaustiveUovSearch(s, SearchObjective::BoundedStorage, opts);
    EXPECT_EQ(storage_best.best_objective, ex.best_objective);
}

TEST(Search, BoundedStorageMatchesExhaustive)
{
    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{30, 6});
    SearchOptions opts;
    opts.isg = isg;
    for (const Stencil &s :
         {stencils::simpleExample(), stencils::fivePoint(),
          Stencil({IVec{1, 1}, IVec{1, -1}})}) {
        SearchResult bb =
            BranchBoundSearch(s, SearchObjective::BoundedStorage, opts)
                .run();
        SearchResult ex =
            exhaustiveUovSearch(s, SearchObjective::BoundedStorage, opts);
        EXPECT_EQ(bb.best_objective, ex.best_objective) << s.str();
    }
}

TEST(Search, BoundedStorageRequiresIsg)
{
    EXPECT_THROW(BranchBoundSearch(stencils::simpleExample(),
                                   SearchObjective::BoundedStorage),
                 UovUserError);
}

TEST(Search, FifoAblationFindsSameOptimum)
{
    for (const Stencil &s :
         {stencils::simpleExample(), stencils::fivePoint(),
          stencils::threeVector()}) {
        SearchOptions fifo_opts;
        fifo_opts.use_priority_queue = false;
        SearchResult pq =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        SearchResult fifo = BranchBoundSearch(
                                s, SearchObjective::ShortestVector,
                                fifo_opts)
                                .run();
        EXPECT_EQ(pq.best_objective, fifo.best_objective) << s.str();
    }
}

TEST(Search, PriorityQueueFindsBestNoLaterThanFifo)
{
    // The paper's motivation for the priority queue: best candidates
    // are examined first, so the bound tightens sooner.
    Stencil s = stencils::fivePoint();
    SearchOptions fifo_opts;
    fifo_opts.use_priority_queue = false;
    SearchResult pq =
        BranchBoundSearch(s, SearchObjective::ShortestVector).run();
    SearchResult fifo =
        BranchBoundSearch(s, SearchObjective::ShortestVector, fifo_opts)
            .run();
    EXPECT_LE(pq.stats.visits_to_best, fifo.stats.visits_to_best);
}

TEST(Search, BoundShrinkingAblationStaysOptimal)
{
    for (const Stencil &s :
         {stencils::simpleExample(), stencils::fivePoint(),
          stencils::threeVector()}) {
        SearchOptions no_shrink;
        no_shrink.disable_bound_shrinking = true;
        SearchResult off = BranchBoundSearch(
                               s, SearchObjective::ShortestVector,
                               no_shrink)
                               .run();
        SearchResult on =
            BranchBoundSearch(s, SearchObjective::ShortestVector).run();
        EXPECT_EQ(on.best_objective, off.best_objective) << s.str();
        EXPECT_GE(off.stats.visited, on.stats.visited) << s.str();
    }
}

TEST(Search, NodeBudgetReturnsLegalFallback)
{
    SearchOptions opts;
    opts.budget.max_nodes = 1;
    SearchResult r = BranchBoundSearch(stencils::fivePoint(),
                                       SearchObjective::ShortestVector,
                                       opts)
                         .run();
    EXPECT_TRUE(r.degraded());
    EXPECT_EQ(r.degraded_reason, "node-budget");
    // Best-so-far is still a legal UOV (at worst the initial one).
    UovOracle oracle(stencils::fivePoint());
    EXPECT_TRUE(oracle.isUov(r.best_uov));
}

TEST(Search, ZeroDeadlineDegradesToInitialUov)
{
    // A 0 ms deadline is the extreme anytime case: the search must
    // return the ov_o seed, deterministically, without expanding a
    // single node.
    Stencil s = stencils::fivePoint();
    SearchOptions opts;
    opts.budget.deadline = Deadline::afterMillis(0);
    SearchResult r =
        BranchBoundSearch(s, SearchObjective::ShortestVector, opts)
            .run();
    EXPECT_TRUE(r.degraded());
    EXPECT_EQ(r.degraded_reason, "deadline");
    EXPECT_EQ(r.stats.visited, 0u);
    EXPECT_EQ(r.best_uov, s.initialUov());
    EXPECT_EQ(r.best_objective, r.initial_objective);
}

TEST(Search, CancelTokenStopsTheSearch)
{
    CancelToken cancel = CancelToken::make();
    cancel.requestCancel();
    SearchOptions opts;
    opts.budget.cancel = cancel;
    SearchResult r = BranchBoundSearch(stencils::fivePoint(),
                                       SearchObjective::ShortestVector,
                                       opts)
                         .run();
    EXPECT_TRUE(r.degraded());
    EXPECT_EQ(r.degraded_reason, "cancelled");
    EXPECT_EQ(r.stats.visited, 0u);
}

TEST(Search, IncumbentCallbackSeesSeedAndImprovements)
{
    struct Observation
    {
        int64_t objective;
        uint64_t nodes;
    };
    std::vector<Observation> seen;
    SearchOptions opts;
    opts.on_incumbent = [&](const IVec &, int64_t objective,
                            uint64_t nodes, int64_t) {
        seen.push_back({objective, nodes});
    };
    SearchResult r = BranchBoundSearch(stencils::fivePoint(),
                                       SearchObjective::ShortestVector,
                                       opts)
                         .run();
    // First observation is the ov_o seed at zero nodes; objectives
    // strictly improve; the last equals the final answer.
    ASSERT_GE(seen.size(), 2u);
    EXPECT_EQ(seen.front().objective, r.initial_objective);
    EXPECT_EQ(seen.front().nodes, 0u);
    for (size_t i = 1; i < seen.size(); ++i) {
        EXPECT_LT(seen[i].objective, seen[i - 1].objective);
        EXPECT_GE(seen[i].nodes, seen[i - 1].nodes);
    }
    EXPECT_EQ(seen.back().objective, r.best_objective);
}

TEST(Search, StatsAreCoherent)
{
    SearchResult r = BranchBoundSearch(stencils::fivePoint(),
                                       SearchObjective::ShortestVector)
                         .run();
    EXPECT_GT(r.stats.visited, 0u);
    EXPECT_GT(r.stats.enqueued, 0u);
    EXPECT_GE(r.stats.enqueued, r.stats.visited);
    EXPECT_LE(r.stats.visits_to_best, r.stats.visited);
    EXPECT_FALSE(r.degraded());
    EXPECT_EQ(r.status, SearchStatus::Optimal);
    EXPECT_TRUE(r.degraded_reason.empty());
    EXPECT_FALSE(r.stats.str().empty());
}

TEST(Search, WideStencilStress)
{
    // 9-point stencil (radius 4): UOV by the same argument is (2,0).
    Stencil s({IVec{1, -4}, IVec{1, -3}, IVec{1, -2}, IVec{1, -1},
               IVec{1, 0}, IVec{1, 1}, IVec{1, 2}, IVec{1, 3},
               IVec{1, 4}});
    SearchResult r =
        BranchBoundSearch(s, SearchObjective::ShortestVector).run();
    EXPECT_EQ(r.best_uov, (IVec{2, 0}));
}

TEST(Search, ThirtyThreeDependencesRejectedWithMessage)
{
    // PATHSETs are uint32_t masks: (1u << m) is undefined past m = 32,
    // so 33 distinct dependences must be rejected up front with a
    // message naming the limit, not fed into the search.
    std::vector<IVec> deps;
    for (int64_t k = 0; k < 33; ++k)
        deps.push_back(IVec{1, k});
    try {
        Stencil s(deps);
        FAIL() << "expected UovUserError";
    } catch (const UovUserError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("33"), std::string::npos) << msg;
        EXPECT_NE(msg.find("32"), std::string::npos) << msg;
        EXPECT_NE(msg.find("PATHSET"), std::string::npos) << msg;
    }
}

TEST(Search, ThirtyTwoDependenceBoundaryRuns)
{
    // Exactly 32 dependences is legal and exercises the full_mask ==
    // 0xffffffff special case ((1u << 32) - 1 would be UB).  A tight
    // node budget keeps it fast; the degraded result is still a
    // certified UOV.
    std::vector<IVec> deps;
    for (int64_t k = 0; k < 32; ++k)
        deps.push_back(IVec{1, k});
    Stencil s(deps);
    ASSERT_EQ(s.size(), 32u);

    SearchOptions options;
    options.budget.max_nodes = 2000;
    BranchBoundSearch search(s, SearchObjective::ShortestVector,
                             options);
    SearchResult r = search.run();
    EXPECT_TRUE(UovOracle(s).isUov(r.best_uov));
    EXPECT_LE(r.stats.visited, 2000u);
}

} // namespace
} // namespace uov
