/**
 * @file
 * Universal occupancy vector membership and certificates (Section 3.1).
 *
 * w is in UOV(V) iff for every v_i in V the system
 *     w = a_i1 v_1 + ... + a_im v_m,   a_ij >= 0, a_ii >= 1
 * has an integer solution -- equivalently, (w - v_i) lies in the
 * non-negative integer cone of V.  The decision problem is NP-complete
 * (paper theorem; see core/reduction.h), but exact solving is practical
 * for real stencils.
 */

#ifndef UOV_CORE_UOV_H
#define UOV_CORE_UOV_H

#include <memory>
#include <optional>
#include <vector>

#include "core/cone.h"
#include "core/stencil.h"
#include "geometry/ivec.h"

namespace uov {

/**
 * A full certificate that w is a universal occupancy vector: one
 * coefficient row per stencil vector; row i satisfies a_ii >= 1.
 */
struct UovCertificate
{
    IVec uov;                                  ///< the certified vector
    std::vector<std::vector<int64_t>> rows;    ///< rows[i][j] = a_ij
};

/** Exact UOV membership oracle for one stencil. */
class UovOracle
{
  public:
    explicit UovOracle(Stencil stencil);

    /** Share an existing cone memo (same stencil) with this oracle. */
    explicit UovOracle(std::shared_ptr<ConeMemo> memo);

    const Stencil &stencil() const { return _cone.stencil(); }

    /** Is w a universal occupancy vector for this stencil? */
    bool isUov(const IVec &w);

    /**
     * Produce the full per-dependence coefficient certificate, or
     * nullopt when w is not a UOV.  Certificates are verified before
     * being returned.
     */
    std::optional<UovCertificate> certify(const IVec &w);

    /** The guaranteed-legal initial UOV, ov_o = sum v_i. */
    IVec initialUov() const { return _cone.stencil().initialUov(); }

    /** Access the underlying cone solver (shared memoization). */
    ConeSolver &cone() { return _cone; }

  private:
    ConeSolver _cone;
};

/**
 * Generalized UOV oracle for multi-statement loops (the paper's
 * Section 7 future work, implemented): the *schedule* is constrained
 * by the union of all loop-carried flow dependences in the nest
 * (the cone), while the liveness of one array's values is governed by
 * that array's own consumer distances -- which may include the zero
 * vector for same-iteration uses by later statements.
 *
 * w is a safe occupancy vector for the array under every legal
 * schedule iff for every consumer distance c, (w - c) lies in the
 * non-negative integer cone of the schedule dependences.  With
 * consumers == cone generators this reduces to the classic UOV test.
 */
class GeneralUovOracle
{
  public:
    /**
     * @param schedule_cone all loop-carried flow dependences of the
     *        nest (what constrains legal schedules)
     * @param consumers flow distances into reads of the array under
     *        consideration; each must be zero or a member of the cone
     */
    GeneralUovOracle(Stencil schedule_cone, std::vector<IVec> consumers);

    const Stencil &scheduleCone() const { return _cone.stencil(); }
    const std::vector<IVec> &consumers() const { return _consumers; }

    /** Is w safe for this array under every legal schedule? */
    bool isUov(const IVec &w);

    /** Sum of the cone generators: always safe (same argument). */
    IVec initialUov() const { return _cone.stencil().initialUov(); }

    /**
     * Shortest safe vector by exhaustive enumeration of the ball
     * |w| <= |initialUov()| (general consumers defeat the PATHSET
     * search, so the reference method is used).
     */
    IVec searchShortest();

  private:
    ConeSolver _cone;
    std::vector<IVec> _consumers;
};

/**
 * A UOV shared by several loops (paper Section 7: "select our
 * occupancy vector in a way that allows two loops to use the same
 * OV-mapping for a given array").  Searches the ball of radius
 * max over loops of |initial UOV| for the shortest vector universal
 * for *every* stencil; nullopt when none exists in that ball (a
 * shared UOV may not exist at all -- e.g. stencils whose UOV sets
 * live on disjoint lattice lines).
 */
std::optional<IVec> findSharedUov(const std::vector<Stencil> &stencils);

/**
 * Is @p ov a safe occupancy vector under the linear schedule
 * sigma(q) = h.q (ties broken arbitrarily among independent points)?
 *
 * Safe iff for every dependence v: h.v < h.ov, or v == ov (the
 * consumer is the overwriting iteration itself, which reads before it
 * writes).  With ties possible, h.v == h.ov for v != ov is unsafe:
 * some tie-break runs the overwriter first.  This is the
 * schedule-GIVEN counterpart of the UOV test (Section 6's related
 * work); the empirical oracle lives in schedule/ov_legality.h.
 *
 * @pre h is a legal schedule vector: h.v > 0 for every dependence
 */
bool ovLegalForLinearSchedule(const IVec &h, const IVec &ov,
                              const Stencil &stencil);

} // namespace uov

#endif // UOV_CORE_UOV_H
