#include "schedule/parallel_executor.h"

#include <atomic>
#include <map>

#include "schedule/legality.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace uov {

ParallelExecutionResult
runParallelWavefront(const StencilComputation &comp, const IVec &lo,
                     const IVec &hi, const IVec &h, const IVec &ov,
                     unsigned threads, ModLayout layout)
{
    UOV_REQUIRE(threads >= 1, "need at least one thread");
    UOV_REQUIRE(wavefrontLegal(h, comp.stencil),
                "h = " << h.str() << " is not a legal wavefront for "
                       << comp.stencil.str());

    ExpandedArray<uint64_t> ref = computeReference(comp, lo, hi);

    StorageMapping sm =
        StorageMapping::create(ov, Polyhedron::box(lo, hi), layout);
    OVArray<uint64_t> store(std::move(sm));

    auto in_box = [&](const IVec &p) {
        for (size_t c = 0; c < p.dim(); ++c)
            if (p[c] < lo[c] || p[c] > hi[c])
                return false;
        return true;
    };

    // Bucket the points by wave.
    std::map<int64_t, std::vector<IVec>> waves;
    {
        LexSchedule order = LexSchedule::identity(lo.dim());
        order.forEach(lo, hi, [&](const IVec &q) {
            waves[h.dot(q)].push_back(q);
        });
    }

    ParallelExecutionResult result;
    result.threads = threads;
    result.waves = static_cast<int64_t>(waves.size());

    std::atomic<uint64_t> mismatches{0};
    std::atomic<uint64_t> points{0};

    for (const auto &[wave, pts] : waves) {
        (void)wave;
        auto worker = [&](size_t begin, size_t end) {
            std::vector<uint64_t> inputs(comp.stencil.size());
            for (size_t i = begin; i < end; ++i) {
                const IVec &q = pts[i];
                for (size_t k = 0; k < comp.stencil.size(); ++k) {
                    IVec p = q - comp.stencil.dep(k);
                    inputs[k] = in_box(p) ? store.at(p)
                                          : comp.boundary(p);
                }
                uint64_t value = comp.combine(q, inputs);
                store.at(q) = value;
                points.fetch_add(1, std::memory_order_relaxed);
                if (value != ref.at(q))
                    mismatches.fetch_add(1,
                                         std::memory_order_relaxed);
            }
        };

        // Waves are often small; dispatching chunks to the shared
        // persistent pool avoids paying a thread spawn + join per
        // wave.  parallelFor blocks until the wave is done -- the
        // inter-wave barrier.
        ThreadPool::shared().parallelFor(pts.size(), threads, worker);
    }

    result.points = points.load();
    result.mismatches = mismatches.load();
    return result;
}

} // namespace uov
