/**
 * @file
 * Figure 1's simple example in its three storage versions:
 *
 *   (a) Original / natural:  A[i,j] = f(A[i-1,j], A[i,j-1],
 *       A[i-1,j-1]) over a full (n+1) x (m+1) array -- n*m temporary
 *       cells beyond the inputs.
 *   (b) OV-mapped with UOV (1,1): one anti-diagonal,
 *       SM(q) = (-1,1).q + n, n+m+1 cells -- still tilable.
 *   (c) Storage-optimized: one row of m+1 plus temp1/temp2 -- m+2
 *       cells, schedule locked to the original loop order.
 *
 * f is a fixed arithmetic combination so all three versions produce
 * identical outputs (the last row of A).
 */

#ifndef UOV_KERNELS_SIMPLE_H
#define UOV_KERNELS_SIMPLE_H

#include <cstdint>
#include <vector>

#include "sim/memory_policy.h"
#include "support/error.h"

namespace uov {

/** Figure 1's three code versions. */
enum class SimpleVariant
{
    Natural,          ///< Figure 1(a)
    OvMapped,         ///< Figure 1(b)
    StorageOptimized, ///< Figure 1(c)
};

const char *simpleVariantName(SimpleVariant v);

/** Storage cells used for A's values (Figure 1 captions). */
int64_t simpleStorage(SimpleVariant v, int64_t n, int64_t m);

namespace detail {

/** Figure 1's f: a cheap, order-sensitive integer mix. */
inline int64_t
simpleF(int64_t up, int64_t left, int64_t diag)
{
    return up * 3 + left * 5 - diag * 2 + 1;
}

} // namespace detail

/**
 * Run one version over the n x m iteration space.  Row 0 of A is the
 * input (i + 1 here); column 0 holds the constant 7 (the paper: "the
 * zero-th column contains the same constant value in each entry").
 * Returns the sum of the n-th row, the loop's only live-out data.
 */
template <typename Mem>
int64_t
runSimple(SimpleVariant variant, int64_t n, int64_t m, Mem &mem,
          VirtualArena &arena)
{
    UOV_REQUIRE(n >= 1 && m >= 1, "need a non-empty iteration space");
    constexpr int64_t kColumnConstant = 7;
    auto input = [](int64_t j) { return j + 1; };

    switch (variant) {
      case SimpleVariant::Natural: {
        SimBuffer<int64_t> a(
            arena, static_cast<size_t>((n + 1) * (m + 1)));
        auto at = [m](int64_t i, int64_t j) {
            return static_cast<size_t>(i * (m + 1) + j);
        };
        for (int64_t j = 0; j <= m; ++j)
            a.data()[at(0, j)] = input(j);
        for (int64_t i = 0; i <= n; ++i)
            a.data()[at(i, 0)] = kColumnConstant;
        for (int64_t i = 1; i <= n; ++i) {
            for (int64_t j = 1; j <= m; ++j) {
                int64_t v = detail::simpleF(
                    mem.load(a, at(i - 1, j)),
                    mem.load(a, at(i, j - 1)),
                    mem.load(a, at(i - 1, j - 1)));
                mem.compute(2.0);
                mem.store(a, at(i, j), v);
            }
        }
        int64_t sum = 0;
        for (int64_t j = 1; j <= m; ++j)
            sum += mem.load(a, at(n, j));
        return sum;
      }

      case SimpleVariant::OvMapped: {
        // Figure 1(b): A[n - i + j] with n+m+1 cells.
        SimBuffer<int64_t> a(arena, static_cast<size_t>(n + m + 1));
        auto at = [n](int64_t i, int64_t j) {
            return static_cast<size_t>(n - i + j);
        };
        for (int64_t j = 0; j <= m; ++j)
            a.data()[at(0, j)] = input(j);
        for (int64_t i = 0; i <= n; ++i)
            a.data()[at(i, 0)] = kColumnConstant;
        for (int64_t i = 1; i <= n; ++i) {
            for (int64_t j = 1; j <= m; ++j) {
                int64_t v = detail::simpleF(
                    mem.load(a, at(i - 1, j)),
                    mem.load(a, at(i, j - 1)),
                    mem.load(a, at(i - 1, j - 1)));
                mem.compute(2.0);
                mem.store(a, at(i, j), v);
            }
        }
        int64_t sum = 0;
        for (int64_t j = 1; j <= m; ++j)
            sum += mem.load(a, at(n, j));
        return sum;
      }

      case SimpleVariant::StorageOptimized: {
        // Figure 1(c): one row plus temp1/temp2; m+2 cells.
        SimBuffer<int64_t> a(arena, static_cast<size_t>(m + 1));
        for (int64_t j = 0; j <= m; ++j)
            a.data()[static_cast<size_t>(j)] = input(j);
        for (int64_t i = 1; i <= n; ++i) {
            int64_t temp2 = kColumnConstant; // A[i-1, 0]
            // A[0] plays the role of the constant column within the
            // row sweep.
            mem.store(a, 0, kColumnConstant);
            for (int64_t j = 1; j <= m; ++j) {
                auto jj = static_cast<size_t>(j);
                int64_t temp1 = mem.load(a, jj); // A[i-1, j]
                int64_t v = detail::simpleF(
                    temp1, mem.load(a, jj - 1), temp2);
                mem.compute(2.0);
                mem.store(a, jj, v);
                temp2 = temp1;
            }
        }
        int64_t sum = 0;
        for (int64_t j = 1; j <= m; ++j)
            sum += mem.load(a, static_cast<size_t>(j));
        return sum;
      }
    }
    UOV_UNREACHABLE("bad simple variant");
}

} // namespace uov

#endif // UOV_KERNELS_SIMPLE_H
