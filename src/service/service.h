/**
 * @file
 * The concurrent UOV query service: canonicalize, consult the sharded
 * result cache, deduplicate in-flight identical queries
 * (single-flight), and fall through to the branch-and-bound solver.
 *
 * QueryService::query is safe to call from any number of threads; the
 * service itself owns no threads (the batch executor supplies
 * concurrency by fanning requests onto a ThreadPool).  Single-flight:
 * the first thread to miss on a canonical key computes it inline
 * while later threads with the same key block on that flight and
 * receive the identical answer object -- an NP-complete search is
 * never duplicated by a traffic burst.  The owner is always actively
 * running on some thread (flights are created by the thread that
 * computes), so waiters cannot deadlock against a queued task.
 *
 * Metric reconciliation invariant (asserted by tests): with the cache
 * enabled, every query performs exactly one cache lookup, so
 * service.cache.hits + service.cache.misses == service.requests.
 */

#ifndef UOV_SERVICE_SERVICE_H
#define UOV_SERVICE_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "service/answer.h"
#include "service/canonical.h"
#include "service/metrics.h"
#include "service/result_cache.h"
#include "service/store.h"

namespace uov {
namespace service {

/** Service configuration. */
struct ServiceOptions
{
    /** Result-cache byte budget; 0 disables caching entirely. */
    size_t cache_bytes = 64ull << 20;
    /** Cache stripe count (rounded up to a power of two). */
    size_t cache_shards = 16;
    /** Branch-and-bound node budget per query (anytime answers). */
    uint64_t max_visits = 10'000'000;
    /**
     * Persistent result-store path; empty disables durability.  When
     * set, the store is opened (torn tails truncated), preloaded into
     * the cache, consulted on every cache miss, and appended to after
     * every search -- a restarted daemon answers its corpus from disk
     * with zero searches.  An unopenable store degrades to storeless
     * operation with a warning (counter service.store.open_errors);
     * it never takes the service down.
     */
    std::string store_path;
    /**
     * Compact the store after every N acknowledged appends (drop
     * superseded duplicate records via the store's atomic tmp+rename
     * rewrite); 0 disables periodic compaction.  Counted across the
     * service lifetime, so long-running daemons bound their log growth
     * without an operator cron job.
     */
    uint64_t store_compact_every = 0;
};

class QueryService
{
  public:
    /** @p metrics must outlive the service. */
    QueryService(ServiceOptions options, MetricsRegistry &metrics);

    /**
     * Answer one query.  Deterministic for deadline_ms in {-1, 0}:
     * the result equals solveDirect(stencil, objective, bounds,
     * budget) regardless of cache state or concurrent callers (a
     * positive wall-clock deadline makes the degradation point
     * inherently timing-dependent, so only the safety contract --
     * certified UOV no worse than ov_o -- holds there).  Thread-safe.
     *
     * @param deadline_ms wall-clock budget for this request;
     *        -1 = unbounded, 0 = degrade immediately to ov_o.
     *
     * @throws UovUserError on invalid input (e.g. missing bounds for
     *         the storage objective); never corrupts service state.
     */
    ServiceAnswer query(const Stencil &stencil,
                        SearchObjective objective,
                        const std::optional<IVec> &isg_lo,
                        const std::optional<IVec> &isg_hi,
                        int64_t deadline_ms = -1);

    /** Number of branch-and-bound searches actually executed. */
    uint64_t searchesExecuted() const;

    ResultCache::Stats cacheStats() const { return _cache.stats(); }
    MetricsRegistry &metrics() { return _metrics; }
    const ServiceOptions &options() const { return _options; }
    /** Null when no store was configured or it failed to open. */
    const ResultStore *store() const { return _store.get(); }

  private:
    /** One in-flight computation; waiters block on cv until done. */
    struct Flight
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        ServiceAnswer answer;
        std::exception_ptr error;
    };

    ServiceOptions _options;
    MetricsRegistry &_metrics;
    ResultCache _cache;
    std::unique_ptr<ResultStore> _store;

    std::mutex _flights_mutex;
    std::unordered_map<CanonicalKey, std::shared_ptr<Flight>,
                       CanonicalKeyHash>
        _flights;

    std::atomic<uint64_t> _appends_since_compact{0};

    Counter &_requests;
    Counter &_searches;
    Counter &_coalesced;
    Counter &_canon_removed;
    Counter &_timeouts;
    Histogram &_latency_us;
};

} // namespace service
} // namespace uov

#endif // UOV_SERVICE_SERVICE_H
