#include "geometry/matrix.h"

#include <sstream>

#include "geometry/rational.h"
#include "support/checked.h"
#include "support/error.h"

namespace uov {

IMatrix::IMatrix(size_t rows, size_t cols)
    : _rows(rows), _cols(cols), _data(rows * cols, 0)
{
}

IMatrix::IMatrix(std::vector<std::vector<int64_t>> rows)
{
    _rows = rows.size();
    _cols = _rows ? rows[0].size() : 0;
    _data.reserve(_rows * _cols);
    for (const auto &r : rows) {
        UOV_REQUIRE(r.size() == _cols, "ragged matrix rows");
        for (int64_t v : r)
            _data.push_back(v);
    }
}

IMatrix
IMatrix::identity(size_t n)
{
    IMatrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1;
    return m;
}

int64_t
IMatrix::operator()(size_t r, size_t c) const
{
    UOV_CHECK(r < _rows && c < _cols, "matrix index out of range");
    return _data[idx(r, c)];
}

int64_t &
IMatrix::operator()(size_t r, size_t c)
{
    UOV_CHECK(r < _rows && c < _cols, "matrix index out of range");
    return _data[idx(r, c)];
}

IVec
IMatrix::row(size_t r) const
{
    UOV_CHECK(r < _rows, "row out of range");
    std::vector<int64_t> v(_cols);
    for (size_t c = 0; c < _cols; ++c)
        v[c] = _data[idx(r, c)];
    return IVec(std::move(v));
}

IVec
IMatrix::col(size_t c) const
{
    UOV_CHECK(c < _cols, "col out of range");
    std::vector<int64_t> v(_rows);
    for (size_t r = 0; r < _rows; ++r)
        v[r] = _data[idx(r, c)];
    return IVec(std::move(v));
}

IMatrix
IMatrix::operator*(const IMatrix &o) const
{
    UOV_CHECK(_cols == o._rows, "matrix shape mismatch in multiply");
    IMatrix r(_rows, o._cols);
    for (size_t i = 0; i < _rows; ++i) {
        for (size_t k = 0; k < _cols; ++k) {
            int64_t a = _data[idx(i, k)];
            if (a == 0)
                continue;
            for (size_t j = 0; j < o._cols; ++j) {
                r(i, j) = checkedAdd(r(i, j),
                                     checkedMul(a, o(k, j)));
            }
        }
    }
    return r;
}

IVec
IMatrix::operator*(const IVec &v) const
{
    UOV_CHECK(_cols == v.dim(), "matrix/vector shape mismatch");
    IVec r(_rows);
    for (size_t i = 0; i < _rows; ++i) {
        int64_t acc = 0;
        for (size_t j = 0; j < _cols; ++j)
            acc = checkedAdd(acc, checkedMul(_data[idx(i, j)], v[j]));
        r[i] = acc;
    }
    return r;
}

IMatrix
IMatrix::operator+(const IMatrix &o) const
{
    UOV_CHECK(_rows == o._rows && _cols == o._cols, "shape mismatch");
    IMatrix r(_rows, _cols);
    for (size_t i = 0; i < _data.size(); ++i)
        r._data[i] = checkedAdd(_data[i], o._data[i]);
    return r;
}

IMatrix
IMatrix::operator-(const IMatrix &o) const
{
    UOV_CHECK(_rows == o._rows && _cols == o._cols, "shape mismatch");
    IMatrix r(_rows, _cols);
    for (size_t i = 0; i < _data.size(); ++i)
        r._data[i] = checkedSub(_data[i], o._data[i]);
    return r;
}

bool
IMatrix::operator==(const IMatrix &o) const
{
    return _rows == o._rows && _cols == o._cols && _data == o._data;
}

IMatrix
IMatrix::transposed() const
{
    IMatrix r(_cols, _rows);
    for (size_t i = 0; i < _rows; ++i)
        for (size_t j = 0; j < _cols; ++j)
            r(j, i) = _data[idx(i, j)];
    return r;
}

int64_t
IMatrix::determinant() const
{
    UOV_CHECK(_rows == _cols, "determinant of non-square matrix");
    size_t n = _rows;
    if (n == 0)
        return 1;

    // Bareiss fraction-free elimination on a working copy.
    std::vector<int64_t> a = _data;
    auto at = [&](size_t r, size_t c) -> int64_t & { return a[r * n + c]; };

    int64_t sign = 1;
    int64_t prev = 1;
    for (size_t k = 0; k + 1 < n; ++k) {
        if (at(k, k) == 0) {
            size_t piv = k + 1;
            while (piv < n && at(piv, k) == 0)
                ++piv;
            if (piv == n)
                return 0;
            for (size_t c = 0; c < n; ++c)
                std::swap(at(k, c), at(piv, c));
            sign = -sign;
        }
        for (size_t i = k + 1; i < n; ++i) {
            for (size_t j = k + 1; j < n; ++j) {
                int64_t num = checkedSub(
                    checkedMul(at(i, j), at(k, k)),
                    checkedMul(at(i, k), at(k, j)));
                UOV_CHECK(num % prev == 0, "Bareiss divisibility");
                at(i, j) = num / prev;
            }
            at(i, k) = 0;
        }
        prev = at(k, k);
    }
    return checkedMul(sign, at(n - 1, n - 1));
}

bool
IMatrix::isUnimodular() const
{
    int64_t d = determinant();
    return d == 1 || d == -1;
}

IMatrix
IMatrix::inverseUnimodular() const
{
    int64_t det = determinant();
    UOV_REQUIRE(det == 1 || det == -1,
                "inverseUnimodular requires |det| == 1, det=" << det);
    size_t n = _rows;
    IMatrix inv(n, n);
    // Adjugate: inv(i,j) = det * cofactor(j,i). For our tiny n this
    // minor-expansion cost is irrelevant.
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            IMatrix minor(n - 1, n - 1);
            for (size_t r = 0, mr = 0; r < n; ++r) {
                if (r == j)
                    continue;
                for (size_t c = 0, mc = 0; c < n; ++c) {
                    if (c == i)
                        continue;
                    minor(mr, mc) = (*this)(r, c);
                    ++mc;
                }
                ++mr;
            }
            int64_t cof = minor.determinant();
            if ((i + j) % 2 == 1)
                cof = checkedNeg(cof);
            inv(i, j) = checkedMul(det, cof);
        }
    }
    return inv;
}

void
IMatrix::addRowMultiple(size_t r, size_t s, int64_t k)
{
    UOV_CHECK(r != s && r < _rows && s < _rows, "bad row op");
    for (size_t c = 0; c < _cols; ++c)
        _data[idx(r, c)] =
            checkedAdd(_data[idx(r, c)], checkedMul(k, _data[idx(s, c)]));
}

void
IMatrix::swapRows(size_t r, size_t s)
{
    UOV_CHECK(r < _rows && s < _rows, "bad row swap");
    if (r == s)
        return;
    for (size_t c = 0; c < _cols; ++c)
        std::swap(_data[idx(r, c)], _data[idx(s, c)]);
}

std::string
IMatrix::str() const
{
    std::ostringstream oss;
    oss << *this;
    return oss.str();
}

std::ostream &
operator<<(std::ostream &os, const IMatrix &m)
{
    os << "[";
    for (size_t r = 0; r < m.rows(); ++r) {
        if (r)
            os << "; ";
        for (size_t c = 0; c < m.cols(); ++c) {
            if (c)
                os << " ";
            os << m(r, c);
        }
    }
    os << "]";
    return os;
}

} // namespace uov
