/**
 * @file
 * Schedule-specific storage optimization: the baseline the paper
 * compares against (Section 6: "The most closely related work to ours
 * is [Lefebvre & Feautrier], which also determines storage reuse for
 * a loop.  Their work takes as input a given parallel schedule").
 *
 * Given a linear schedule sigma(q) = h.q, find the best occupancy
 * vector that is safe *for that schedule only* (ovLegalForLinearSchedule)
 * -- generally shorter than the UOV, hence less storage, but invalid
 * for other schedules.  The bench quantifies the paper's trade-off:
 * schedule-specific < UOV < full expansion in storage, with only the
 * UOV surviving re-scheduling.
 */

#ifndef UOV_SCHEDULE_SCHEDULE_SPECIFIC_H
#define UOV_SCHEDULE_SCHEDULE_SPECIFIC_H

#include <optional>

#include "core/stencil.h"
#include "geometry/polyhedron.h"
#include "schedule/ov_legality.h"

namespace uov {

/** Result of the schedule-specific OV search. */
struct ScheduleSpecificResult
{
    IVec ov;              ///< best OV for the given schedule
    int64_t objective;    ///< |ov|^2, or cells when an ISG was given
    uint64_t candidates;  ///< vectors examined
};

/**
 * The best occupancy vector for the linear schedule sigma(q) = h.q:
 * shortest (or fewest storage cells over @p isg, when given) among
 * all vectors legal for that schedule.  Exhaustive over the ball
 * bounded by the initial UOV, which is legal for every legal h.
 *
 * @pre h.v > 0 for every dependence (h is a legal schedule)
 */
ScheduleSpecificResult bestOvForLinearSchedule(
    const IVec &h, const Stencil &stencil,
    const std::optional<Polyhedron> &isg = std::nullopt);

} // namespace uov

#endif // UOV_SCHEDULE_SCHEDULE_SPECIFIC_H
