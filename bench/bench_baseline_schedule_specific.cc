/**
 * @file
 * Baseline comparison (Section 6): schedule-specific storage
 * optimization in the style of Lefebvre/Feautrier -- the OV is chosen
 * for ONE given schedule -- vs the UOV, vs full expansion.  Quantifies
 * the paper's trade-off: the UOV costs slightly more storage than the
 * schedule-specific optimum but survives every legal schedule.
 */

#include "bench_common.h"

#include "analysis/live_range.h"
#include "core/search.h"
#include "core/storage_count.h"
#include "core/uov.h"
#include "mapping/modular_mapping.h"
#include "schedule/executor.h"
#include "schedule/schedule_specific.h"

using namespace uov;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseArgs(argc, argv);
    bench::banner("Section 6 baseline (schedule-specific storage vs "
                  "UOV vs expansion)");

    Polyhedron isg = Polyhedron::box(IVec{0, 0}, IVec{64, 1024});
    int64_t expanded = 65 * 1025;

    Table t("Storage cells over a 64 x 1024 ISG");
    t.header({"stencil", "schedule h", "schedule-specific ov", "cells",
              "uov", "cells", "expanded"});

    struct Case
    {
        Stencil stencil;
        IVec h;
    };
    const Case cases[] = {
        {stencils::simpleExample(), IVec{2, 1}},
        {stencils::simpleExample(), IVec{1, 2}},
        {stencils::fivePoint(), IVec{3, 1}},
        {stencils::fivePoint(), IVec{5, 1}},
        {stencils::proteinMatching(), IVec{1, 1}},
    };
    for (const Case &c : cases) {
        ScheduleSpecificResult spec =
            bestOvForLinearSchedule(c.h, c.stencil, isg);
        SearchOptions sopts;
        sopts.isg = isg;
        SearchResult uov = BranchBoundSearch(
                               c.stencil,
                               SearchObjective::BoundedStorage, sopts)
                               .run();
        t.addRow()
            .cell(c.stencil.str())
            .cell(c.h.str())
            .cell(spec.ov.str())
            .cell(formatCount(spec.objective))
            .cell(uov.best_uov.str())
            .cell(formatCount(uov.best_objective))
            .cell(formatCount(expanded));
    }
    bench::emit(t, opt);

    // Flexibility: re-schedule each storage choice under a family of
    // wavefronts and count survivors.
    Table f("Survival under re-scheduling (8 legal wavefronts, "
            "simple-example stencil)");
    f.header({"storage", "ov", "schedules correct"});
    Stencil s = stencils::simpleExample();
    StencilComputation comp(s);
    // Elongated ISG: the schedule-specific optimum becomes a (0,k)
    // vector whose single-row projection beats the anti-diagonal.
    IVec lo{0, 0}, hi{6, 40};
    std::vector<IVec> waves;
    for (int64_t a = 1; a <= 4; ++a)
        for (int64_t b = 1; b <= 2; ++b)
            waves.push_back(IVec{a, b});

    auto survivors = [&](const IVec &ov) {
        int count = 0;
        for (const auto &h : waves) {
            ExecutionResult r = runWithOvStorage(
                comp, WavefrontSchedule(h), lo, hi, ov);
            if (r.correct())
                ++count;
        }
        return count;
    };

    Polyhedron small_isg = Polyhedron::box(lo, hi);
    ScheduleSpecificResult spec =
        bestOvForLinearSchedule(IVec{2, 1}, s, small_isg);
    SearchResult uov =
        BranchBoundSearch(s, SearchObjective::ShortestVector).run();
    f.addRow()
        .cell("schedule-specific (h=(2,1), storage objective)")
        .cell(spec.ov.str())
        .cell(std::to_string(survivors(spec.ov)) + "/" +
              std::to_string(waves.size()));
    f.addRow()
        .cell("universal")
        .cell(uov.best_uov.str())
        .cell(std::to_string(survivors(uov.best_uov)) + "/" +
              std::to_string(waves.size()));
    bench::emit(f, opt);

    std::cout << "the UOV's storage premium buys schedule freedom -- "
                 "the paper's thesis in one table.\n\n";

    // Modular (q mod m) storage, the other schedule-given discipline:
    // universally safe moduli are (near-)trivial for real stencils,
    // while OV lines stay small -- rectangular lattice reuse needs
    // the schedule, freely oriented line reuse does not.
    Table m("Modular vs OV storage over a 24 x 24 ISG");
    m.header({"stencil", "universal moduli", "cells",
              "moduli for wavefront", "cells", "uov cells"});
    IVec mlo{0, 0}, mhi{23, 23};
    Polyhedron misg = Polyhedron::box(mlo, mhi);
    for (const Stencil &st :
         {stencils::simpleExample(), Stencil({IVec{1, 0}}),
          stencils::fivePoint()}) {
        IVec hw{st.maxAbsCoord() + 1, 1}; // legal wavefront
        ModuliSearchResult univ = universallySafeModuli(st, mlo, mhi);
        ModuliSearchResult sched =
            scheduleSpecificModuli(hw, st, mlo, mhi);
        SearchOptions so;
        so.isg = misg;
        SearchResult uov2 =
            BranchBoundSearch(st, SearchObjective::BoundedStorage, so)
                .run();
        m.addRow()
            .cell(st.str())
            .cell(univ.moduli.str() +
                  (univ.trivial ? " (trivial)" : ""))
            .cell(formatCount(univ.cells))
            .cell(sched.moduli.str())
            .cell(formatCount(sched.cells))
            .cell(formatCount(uov2.best_objective));
    }
    bench::emit(m, opt);

    // How close each discipline sits to the information-theoretic
    // floor: the peak number of simultaneously live values.
    Table l("Storage vs live-value lower bound (simple example, "
            "16 x 16 ISG)");
    l.header({"schedule", "max live (bound)", "schedule-specific ov",
              "uov cells"});
    {
        Stencil st = stencils::simpleExample();
        IVec llo{1, 1}, lhi{16, 16};
        Polyhedron lisg = Polyhedron::box(llo, lhi);
        SearchOptions so;
        so.isg = lisg;
        int64_t uov_cells =
            BranchBoundSearch(st, SearchObjective::BoundedStorage, so)
                .run()
                .best_objective;
        for (const IVec &h : {IVec{2, 1}, IVec{1, 1}, IVec{1, 3}}) {
            LiveRangeResult lr =
                maxLiveValues(WavefrontSchedule(h), llo, lhi, st);
            ScheduleSpecificResult sp =
                bestOvForLinearSchedule(h, st, lisg);
            l.addRow()
                .cell("wavefront " + h.str())
                .cell(lr.max_live)
                .cell(formatCount(sp.objective))
                .cell(formatCount(uov_cells));
        }
        LiveRangeResult lex_lr =
            maxLiveValues(LexSchedule::identity(2), llo, lhi, st);
        l.addRow()
            .cell("lex (original)")
            .cell(lex_lr.max_live)
            .cell("m+2 (Fig 1c)")
            .cell(formatCount(uov_cells));
    }
    bench::emit(l, opt);
    return 0;
}
