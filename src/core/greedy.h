/**
 * @file
 * Greedy UOV improvement: a linear-time heuristic alternative to the
 * branch-and-bound search ("a compiler could limit the amount of time
 * the algorithm runs", Section 3.2.2, taken to its extreme).
 *
 * Starting from the always-legal initial UOV (sum of the stencil),
 * repeatedly try local moves that keep the vector universal and
 * shrink the objective: subtracting a stencil vector, and dividing
 * out the content.  Terminates at a local optimum.  Cheap, often
 * optimal on real stencils -- and provably not always (the ablation
 * bench exhibits the gap).
 */

#ifndef UOV_CORE_GREEDY_H
#define UOV_CORE_GREEDY_H

#include "core/search.h"
#include "core/stencil.h"

namespace uov {

/** Outcome of the greedy descent. */
struct GreedyResult
{
    IVec uov;             ///< the local optimum (always a UOV)
    int64_t objective;    ///< its squared length
    uint64_t moves = 0;   ///< accepted improvement moves
    uint64_t probes = 0;  ///< oracle queries made
};

/**
 * Greedy descent from the initial UOV under the shortest-vector
 * objective. Deterministic.
 */
GreedyResult greedyUovSearch(const Stencil &stencil);

} // namespace uov

#endif // UOV_CORE_GREEDY_H
