/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in the repository (synthetic protein strings,
 * random legal schedules, property-test sweeps) goes through SplitMix64
 * so that results are bit-reproducible across runs and platforms.
 */

#ifndef UOV_SUPPORT_RNG_H
#define UOV_SUPPORT_RNG_H

#include <cstdint>

#include "support/error.h"

namespace uov {

/**
 * SplitMix64: tiny, fast, high-quality 64-bit generator.
 * Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
 * generators", OOPSLA 2014.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : _state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (_state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    uint64_t
    nextBelow(uint64_t bound)
    {
        UOV_CHECK(bound > 0, "nextBelow(0)");
        // Rejection sampling to kill modulo bias.
        uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    int64_t
    nextInRange(int64_t lo, int64_t hi)
    {
        UOV_CHECK(lo <= hi, "nextInRange: lo > hi");
        uint64_t span = static_cast<uint64_t>(hi) -
                        static_cast<uint64_t>(lo) + 1;
        if (span == 0) // full 64-bit range
            return static_cast<int64_t>(next());
        return lo + static_cast<int64_t>(nextBelow(span));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    uint64_t _state;
};

} // namespace uov

#endif // UOV_SUPPORT_RNG_H
