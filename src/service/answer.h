/**
 * @file
 * The service's answer object and the reference ("direct") solver the
 * whole subsystem is differentially tested against.
 *
 * Determinism contract: an answer is a pure function of the canonical
 * key -- best UOV and certificate come from BranchBoundSearch /
 * UovOracle::certify on the canonical stencil, both deterministic.
 * The batch executor, the result cache, and the single-flight table
 * may therefore return a stored answer verbatim; responses are
 * byte-identical to a fresh single-threaded computation by
 * construction (asserted end-to-end by the service fuzz oracle and
 * the replay test).
 */

#ifndef UOV_SERVICE_ANSWER_H
#define UOV_SERVICE_ANSWER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/search.h"
#include "core/stencil.h"
#include "geometry/ivec.h"

namespace uov {
namespace service {

/** A certified best-UOV answer for one canonical query. */
struct ServiceAnswer
{
    IVec best_uov;
    int64_t best_objective = 0;
    int64_t initial_objective = 0; ///< objective of the trivial ov_o
    size_t canonical_deps = 0;     ///< |canonical stencil|

    /** Anytime answer: a budget axis expired (still certified). */
    bool degraded = false;

    /** Which budget axis ("node-budget", "deadline", "cancelled"). */
    std::string degraded_reason;

    /**
     * Per-dependence coefficient rows over the *canonical* stencil:
     * rows[i] expresses best_uov = sum_j rows[i][j] * v_j with
     * rows[i][i] >= 1.  Valid for the original query too, since
     * canonicalization removes only implied constraints.
     */
    std::vector<std::vector<int64_t>> cert;

    /** Approximate heap footprint, for cache byte accounting. */
    size_t byteSize() const;

    /** The deterministic wire encoding (without the request index). */
    std::string str() const;
};

/**
 * Solve an already-canonical stencil: branch-and-bound search plus a
 * verified certificate.  @p budget bounds the search (the answer
 * degrades to the best certified UOV found, never fails -- the ov_o
 * seed guarantees a legal incumbent even at a 0 ms deadline).
 */
ServiceAnswer solveCanonical(const Stencil &canonical,
                             SearchObjective objective,
                             const std::optional<IVec> &isg_lo,
                             const std::optional<IVec> &isg_hi,
                             const SearchBudget &budget = {});

/**
 * The reference path: canonicalize, then solveCanonical.  Everything
 * the service returns must equal this function's output for the same
 * query, regardless of cache state or concurrency.
 */
ServiceAnswer solveDirect(const Stencil &stencil,
                          SearchObjective objective,
                          const std::optional<IVec> &isg_lo,
                          const std::optional<IVec> &isg_hi,
                          const SearchBudget &budget = {});

} // namespace service
} // namespace uov

#endif // UOV_SERVICE_ANSWER_H
